//! Parallel, allocation-free fault-simulation campaign engine.
//!
//! Every coverage experiment in this workspace — the E3/E10 tables, scheme
//! synthesis, Monte-Carlo detection probability, the hardware/software
//! cross-check — reduces to the same inner loop: *for each enumerated fault
//! instance, prepare a RAM, inject, run a test, aggregate*. This crate
//! hoists that loop out of the five places it used to be written and makes
//! it fast:
//!
//! * **Pooled devices** — each worker keeps one [`Ram`] and recycles it via
//!   [`Ram::reset_to`] + [`Ram::eject_faults`], so the steady-state
//!   campaign performs **zero heap allocation per fault** instead of two
//!   `Vec` allocations plus fault-bank rebuilds per trial.
//! * **Parallel fan-out** — fault instances are independent, so workers
//!   self-schedule over chunks of the instance index space (chunked
//!   work-stealing on `std::thread::scope`; the environment this workspace
//!   builds in has no registry access, so the fan-out is built on `std`
//!   instead of rayon — the scheduling discipline is the same).
//! * **Early exit** — a fault detected under one data background skips the
//!   remaining backgrounds, exactly like the sequential reference.
//! * **Deterministic aggregation** — workers only fill a per-fault verdict
//!   table; rows are tallied afterwards in enumeration order, so the
//!   resulting [`CoverageReport`] is identical to the sequential path for
//!   any thread count.
//!
//! # Quick start
//!
//! Run a custom checker (anything implementing [`FaultRunner`], including
//! plain closures) over an enumerated fault universe:
//!
//! ```
//! use prt_ram::{FaultUniverse, Geometry, Ram, UniverseSpec};
//! use prt_sim::Campaign;
//!
//! let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
//! // A toy test: write/readback both polarities on every cell.
//! let report = Campaign::new(&universe, |ram: &mut Ram, _bg: u64| {
//!     let n = ram.geometry().cells();
//!     (0..n).any(|a| {
//!         ram.write(a, 0);
//!         let zero_ok = ram.read(a) == 0;
//!         ram.write(a, 1);
//!         !zero_ok || ram.read(a) != 1
//!     })
//! })
//! .with_name("write-readback")
//! .run();
//! assert!(report.class("SAF").unwrap().complete());
//! assert!(!report.class("TF").unwrap().complete()); // down-TFs escape
//! ```
//!
//! The higher layers provide ready-made runners: `prt-march` adapts March
//! tests (`MarchRunner`), `prt-core` implements [`FaultRunner`] for
//! `PiTest`, `PrtScheme`, `BitPlanePi` and `PlaneScheme` directly.
//!
//! The fastest path is a **pre-compiled program**: every test family
//! compiles to the [`prt_ram::prog`] IR (`Executor::compile`,
//! `PiTest::compile`, `PrtScheme::compile`, `PlaneScheme::compile`), and
//! `&TestProgram` / [`ProgramBank`] implement [`FaultRunner`], so the
//! per-trial notation-interpretation tax is paid once per campaign instead
//! of once per fault.

//!
//! # Resilience
//!
//! Campaigns are built to survive the failures a long tester-side run
//! meets: every driver has a fallible `try_*` form returning a typed
//! [`CampaignError`] (the panicking APIs are thin wrappers kept for
//! batch binaries and regression tests), progress can be checkpointed
//! and resumed ([`Campaign::with_checkpoint`]), runs accept a deadline
//! ([`Campaign::with_deadline`]) and cooperative cancellation
//! ([`CancelToken`]) yielding explicitly-marked partial reports, worker
//! panics poison only their own chunk, and a failing lane batch degrades
//! to the scalar oracle instead of killing the campaign
//! ([`CoverageReport::degraded_batches`]). See `DESIGN.md` §"Failure
//! semantics" for the full policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use prt_ram::{
    fault_locality_key, ActiveSet, ActivityIndex, FaultKind, FaultUniverse, Geometry, LaneChunk,
    LaneRam, Ram, TestProgram, Topology,
};

#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
pub mod checkpoint;
mod control;
mod error;
mod report;

pub use control::{CancelToken, StopCause};
pub use error::{CampaignError, CheckpointError};
pub use report::{ClassTally, CoverageReport, CoverageRow, PartialCoverage};

use checkpoint::FingerprintBuilder;
use control::RunControl;

/// First worker panic of a fan-out: the poisoned chunk plus the payload.
type PanicSlot = Mutex<Option<((usize, usize), String)>>;

/// Stringifies a caught panic payload and stores the first one.
fn record_panic(slot: &PanicSlot, chunk: (usize, usize), payload: Box<dyn std::any::Any + Send>) {
    let message = match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    };
    let mut slot = slot.lock().expect("panic slot lock");
    if slot.is_none() {
        *slot = Some((chunk, message));
    }
}

/// Stores the first stop cause a worker observed.
fn record_stop(slot: &Mutex<Option<StopCause>>, cause: StopCause) {
    let mut slot = slot.lock().expect("stop slot lock");
    if slot.is_none() {
        *slot = Some(cause);
    }
}

/// Below this many trials a campaign stays sequential under
/// [`Parallelism::Auto`] — thread spawn/join costs more than the work.
const AUTO_PARALLEL_THRESHOLD: usize = 512;

/// Work-stealing chunk size bounds: small enough to balance ragged trial
/// costs (early-exit makes detected faults much cheaper than escapes),
/// large enough to amortise the shared-counter traffic.
const MAX_CHUNK: usize = 64;

/// How many trial lanes one batched interpreter pass carries — the
/// campaign-facing selector for the const-generic [`LaneRam`] chunk
/// width. Wider chunks amortise the per-pass interpreter walk over more
/// trials and give the plane loops whole `[u64; K]` words to
/// auto-vectorise; narrow chunks waste less work on small universes.
/// Verdicts, reports and checkpoints are bit-identical at every width
/// (property-tested in `tests/batch.rs` and `tests/resilience.rs`), so
/// the width — like the thread count — is a pure throughput knob and is
/// deliberately excluded from the checkpoint fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneWidth {
    /// One `u64` of lanes: 64 trials per pass (the PR-4 baseline).
    X64,
    /// `[u64; 4]` chunks: 256 trials per pass.
    X256,
    /// `[u64; 8]` chunks: 512 trials per pass (the default — ≈3× the
    /// 64-lane throughput on large arrays, where per-pass dispatch
    /// dominates and wide chunks amortise it; small universes with
    /// mostly-empty chunks run somewhat faster at `X64`, see
    /// `BENCH_campaign.json`).
    #[default]
    X512,
}

impl LaneWidth {
    /// Trial lanes per batched interpreter pass at this width.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::X64 => LaneRam::<1>::LANES,
            LaneWidth::X256 => LaneRam::<4>::LANES,
            LaneWidth::X512 => LaneRam::<8>::LANES,
        }
    }

    /// The short schema label bench writers record (`"64"`, `"256"`,
    /// `"512"`).
    pub fn label(self) -> &'static str {
        match self {
            LaneWidth::X64 => "64",
            LaneWidth::X256 => "256",
            LaneWidth::X512 => "512",
        }
    }
}

/// How a campaign distributes its trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker on the calling thread (the sequential reference).
    Sequential,
    /// One worker per available core when the campaign is large enough to
    /// amortise thread startup; sequential otherwise.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to ≥ 1).
    Threads(usize),
}

impl Parallelism {
    fn workers(self, trials: usize) -> usize {
        let w = match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                if trials < AUTO_PARALLEL_THRESHOLD {
                    1
                } else {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                }
            }
        };
        w.min(trials.max(1))
    }
}

/// Something that can run one prepared, single-fault memory and report
/// whether the fault was detected.
///
/// The campaign hands the runner a pooled [`Ram`] that has already been
/// reset and injected; `background` is the data background for this trial
/// (test engines that have no background notion are free to ignore it).
/// Closures `Fn(&mut Ram, u64) -> bool + Sync` implement this directly.
pub trait FaultRunner: Sync {
    /// Runs the test; `true` means the fault was detected.
    fn detect(&self, ram: &mut Ram, background: u64) -> bool;

    /// The compiled program this runner would execute for `background`,
    /// if it can expose one — the hook the **lane-batched** campaign path
    /// dispatches through ([`Campaign::detections`] packs 64 batchable
    /// fault trials per interpreter pass when every background resolves
    /// to a single-port program). Runners without a compiled program
    /// (closures, notation-interpreting adapters) keep the default `None`
    /// and campaigns fall back to the scalar path.
    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        let _ = background;
        None
    }

    /// Checks this runner against a campaign's whole-run configuration
    /// *before* any trial runs — the fallible drivers call it upfront so
    /// a misconfiguration becomes a typed [`CampaignError`] instead of a
    /// worker panic. Runners that cannot know their requirements ahead
    /// of time (closures) keep the default `Ok`.
    fn validate(
        &self,
        geom: Geometry,
        ports: usize,
        backgrounds: &[u64],
    ) -> Result<(), CampaignError> {
        let _ = (geom, ports, backgrounds);
        Ok(())
    }
}

/// The program-vs-campaign checks shared by the compiled runners: same
/// geometry, enough pooled ports.
fn validate_program(
    program: &TestProgram,
    geom: Geometry,
    ports: usize,
) -> Result<(), CampaignError> {
    if geom != program.geometry() {
        return Err(CampaignError::GeometryMismatch {
            program: program.name().to_string(),
            compiled: program.geometry(),
            campaign: geom,
        });
    }
    if ports < program.ports() {
        return Err(CampaignError::PortShortfall {
            program: program.name().to_string(),
            needed: program.ports(),
            pooled: ports,
        });
    }
    Ok(())
}

impl<F> FaultRunner for F
where
    F: Fn(&mut Ram, u64) -> bool + Sync,
{
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        self(ram, background)
    }
}

// NOTE: no blanket `impl FaultRunner for &R` — it would overlap with the
// closure impl above. Engine-aware types implement the trait on their
// reference type instead (`impl FaultRunner for &PrtScheme`, …), so
// campaigns can borrow the runner.

/// A pre-compiled program drives campaigns directly: compilation happened
/// once, so every trial is a pure interpreter pass (allocation-free, early
/// exit at the first failing read). The trial background is ignored — a
/// compiled program bakes its data background in; use [`ProgramBank`] for
/// multi-background campaigns.
///
/// # Panics
///
/// Panics when the campaign's configuration contradicts the program:
/// wrong geometry, too few pooled ports, or a trial background that
/// differs from the one the program declares (March compilers declare
/// theirs). Per-trial device errors count as escapes, but any of these
/// mismatches would turn the *whole* campaign into silently wrong
/// coverage — configuration errors are surfaced loudly instead.
impl FaultRunner for &TestProgram {
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        detect_checked(self, ram, background)
    }

    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        match self.background() {
            // A baked-in background that differs from the trial's is a
            // configuration error — decline the batch path so the scalar
            // path surfaces it with its usual loud panic.
            Some(baked) if baked != background => None,
            _ => Some(self),
        }
    }

    fn validate(
        &self,
        geom: Geometry,
        ports: usize,
        backgrounds: &[u64],
    ) -> Result<(), CampaignError> {
        validate_program(self, geom, ports)?;
        if let Some(baked) = self.background() {
            for &bg in backgrounds {
                if baked != bg {
                    return Err(CampaignError::BackgroundMismatch {
                        program: self.name().to_string(),
                        compiled: baked,
                        requested: bg,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Campaign-side program dispatch: reject whole-campaign configuration
/// errors loudly, then run with the usual per-trial error-as-escape
/// semantics.
fn detect_checked(program: &TestProgram, ram: &mut Ram, background: u64) -> bool {
    assert_eq!(
        ram.geometry(),
        program.geometry(),
        "campaign geometry does not match the geometry '{}' was compiled for",
        program.name()
    );
    assert!(
        ram.ports() >= program.ports(),
        "'{}' needs {} ports but the campaign pools {}-port memories — add .with_ports({})",
        program.name(),
        program.ports(),
        ram.ports(),
        program.ports()
    );
    if let Some(baked) = program.background() {
        assert_eq!(
            baked,
            background,
            "trial background {background:#x} does not match the background '{}' was \
             compiled for — compile one program per background (ProgramBank)",
            program.name()
        );
    }
    program.detect(ram)
}

/// A set of compiled programs keyed by data background — the compiled
/// counterpart of running one test under
/// [`Campaign::with_backgrounds`]: the campaign hands each trial's
/// background to the bank, which dispatches to the program compiled for
/// it.
///
/// # Example
///
/// ```
/// use prt_ram::{Geometry, ProgramBuilder, FaultUniverse, UniverseSpec};
/// use prt_sim::{Campaign, ProgramBank};
///
/// let geom = Geometry::wom(4, 4)?;
/// let bank = ProgramBank::new([0u64, 0b1111].map(|bg| {
///     let mut b = ProgramBuilder::new(geom);
///     for a in 0..4 {
///         b.write(a, bg);
///         b.read_expect(a, bg);
///     }
///     (bg, b.build())
/// }));
/// let u = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
/// let report = Campaign::new(&u, &bank).with_backgrounds(&[0, 0b1111]).run();
/// assert!(report.class("SAF").unwrap().complete());
/// # Ok::<(), prt_ram::RamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBank {
    programs: Vec<(u64, TestProgram)>,
}

impl ProgramBank {
    /// Builds a bank from `(background, program)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on an empty collection.
    pub fn new(programs: impl IntoIterator<Item = (u64, TestProgram)>) -> ProgramBank {
        let programs: Vec<(u64, TestProgram)> = programs.into_iter().collect();
        assert!(!programs.is_empty(), "program bank needs at least one program");
        ProgramBank { programs }
    }

    /// A bank holding a single program (background 0).
    pub fn single(program: TestProgram) -> ProgramBank {
        ProgramBank { programs: vec![(0, program)] }
    }

    /// The backgrounds this bank was compiled for, in insertion order —
    /// pass these to [`Campaign::with_backgrounds`].
    pub fn backgrounds(&self) -> Vec<u64> {
        self.programs.iter().map(|&(bg, _)| bg).collect()
    }

    /// The program compiled for `background` (`None` if absent).
    pub fn program(&self, background: u64) -> Option<&TestProgram> {
        self.programs.iter().find(|&&(bg, _)| bg == background).map(|(_, p)| p)
    }
}

/// Campaigns dispatch each trial's background to the matching compiled
/// program.
///
/// # Panics
///
/// Panics when a trial asks for a background the bank was not compiled
/// for, or when the campaign's geometry differs from the programs' — both
/// campaign/bank configuration mismatches.
impl FaultRunner for &ProgramBank {
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        let program = self
            .program(background)
            .unwrap_or_else(|| panic!("no program compiled for background {background:#x}"));
        detect_checked(program, ram, background)
    }

    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        self.program(background)
    }

    fn validate(
        &self,
        geom: Geometry,
        ports: usize,
        backgrounds: &[u64],
    ) -> Result<(), CampaignError> {
        for &bg in backgrounds {
            let program =
                self.program(bg).ok_or(CampaignError::UnknownBackground { background: bg })?;
            validate_program(program, geom, ports)?;
            if let Some(baked) = program.background() {
                if baked != bg {
                    return Err(CampaignError::BackgroundMismatch {
                        program: program.name().to_string(),
                        compiled: baked,
                        requested: bg,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Runs `count` independent trials against pooled memories and collects the
/// per-trial verdicts in trial order.
///
/// This is the boolean specialisation of [`map_trials`] — see there for
/// the pooling and scheduling contract.
///
/// # Panics
///
/// Panics if `ports` is not a valid port count for [`Ram::with_ports`].
pub fn run_trials<F>(
    geom: Geometry,
    ports: usize,
    count: usize,
    parallelism: Parallelism,
    trial: F,
) -> Vec<bool>
where
    F: Fn(usize, &mut Ram) -> bool + Sync,
{
    map_trials(geom, ports, count, parallelism, trial)
}

/// The fallible form of [`run_trials`]: configuration errors and caught
/// worker panics come back as a typed [`CampaignError`] instead of
/// aborting the process.
///
/// # Errors
///
/// [`CampaignError::BadConfiguration`] for an invalid port count,
/// [`CampaignError::WorkerPanic`] when `trial` panicked (the panic is
/// caught at the fan-out join and poisons only its chunk).
pub fn try_run_trials<F>(
    geom: Geometry,
    ports: usize,
    count: usize,
    parallelism: Parallelism,
    trial: F,
) -> Result<Vec<bool>, CampaignError>
where
    F: Fn(usize, &mut Ram) -> bool + Sync,
{
    try_map_trials(geom, ports, count, parallelism, trial)
}

/// Runs `count` independent trials against pooled memories and collects
/// each trial's **result value** in trial order — the generic campaign
/// mode that per-fault *measurements* (MISR signatures for fault
/// dictionaries, observed response streams, per-trial statistics) build
/// on, where [`run_trials`] only records a verdict bit. See
/// [`map_trials_batched`] for the lane-sliced form measurement campaigns
/// over an explicit fault list use.
///
/// This is the engine's lowest-level primitive (Monte-Carlo campaigns use
/// it directly; [`Campaign`] builds fault-universe sweeps on top). Each
/// worker owns one `Ram`; before every trial the device is healed
/// ([`Ram::eject_faults`]) and zero-reset ([`Ram::reset_to`]), so `trial`
/// always observes a pristine memory and the steady state allocates
/// nothing beyond what `trial` itself allocates. Results land in
/// write-once slots in trial order, so the output is deterministic and
/// independent of the parallelism policy.
///
/// # Panics
///
/// Re-raises whatever [`try_map_trials`] reports: an invalid port count
/// panics with its configuration message, a caught trial panic resumes
/// with its original payload (this is a thin wrapper over the fallible
/// engine).
pub fn map_trials<T, F>(
    geom: Geometry,
    ports: usize,
    count: usize,
    parallelism: Parallelism,
    trial: F,
) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, &mut Ram) -> T + Sync,
{
    try_map_trials(geom, ports, count, parallelism, trial).unwrap_or_else(|e| e.raise())
}

/// The fallible form of [`map_trials`] — the engine the panicking
/// wrapper delegates to. Pooling, scheduling and determinism contracts
/// are identical; failures come back typed.
///
/// # Errors
///
/// [`CampaignError::BadConfiguration`] for an invalid port count,
/// [`CampaignError::WorkerPanic`] when `trial` panicked. A panic poisons
/// only the chunk it fired in: the remaining workers drain quickly and
/// the **first** panic is reported with its chunk's trial range.
pub fn try_map_trials<T, F>(
    geom: Geometry,
    ports: usize,
    count: usize,
    parallelism: Parallelism,
    trial: F,
) -> Result<Vec<T>, CampaignError>
where
    T: Send + Sync,
    F: Fn(usize, &mut Ram) -> T + Sync,
{
    validate_ports(geom, ports)?;
    let workers = parallelism.workers(count);
    let chunk = (count / (workers * 8)).clamp(1, MAX_CHUNK);
    let n_chunks = count.div_ceil(chunk);
    let results: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();
    let panicked = AtomicBool::new(false);
    let panic_slot: PanicSlot = Mutex::new(None);
    let run_chunk = |c: usize, ram: &mut Ram| {
        let (lo, hi) = (c * chunk, ((c + 1) * chunk).min(count));
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            for (i, slot) in results.iter().enumerate().take(hi).skip(lo) {
                ram.eject_faults();
                ram.reset_to(0);
                // Chunks never overlap, so each slot is set once.
                let _ = slot.set(trial(i, ram));
            }
        }));
        if let Err(payload) = attempt {
            record_panic(&panic_slot, (lo, hi), payload);
            panicked.store(true, Ordering::Relaxed);
        }
    };
    if workers <= 1 {
        // Single-thread fast path: chunks run in order on the calling
        // thread, with no claim counter.
        let mut ram = Ram::with_ports(geom, ports).expect("valid port count");
        for c in 0..n_chunks {
            if panicked.load(Ordering::Relaxed) {
                break;
            }
            run_chunk(c, &mut ram);
        }
    } else {
        let next = AtomicUsize::new(0);
        let worker = || {
            let mut ram = Ram::with_ports(geom, ports).expect("valid port count");
            loop {
                if panicked.load(Ordering::Relaxed) {
                    break;
                }
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                run_chunk(c, &mut ram);
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(worker);
            }
        });
    }
    if let Some((chunk, payload)) = panic_slot.into_inner().expect("panic slot lock") {
        return Err(CampaignError::WorkerPanic { chunk, payload });
    }
    Ok(results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every trial index was dispatched"))
        .collect())
}

/// Validates the pooled-device configuration once, upfront, so workers
/// can `expect` their pool construction.
fn validate_ports(geom: Geometry, ports: usize) -> Result<(), CampaignError> {
    Ram::with_ports(geom, ports).map(drop).map_err(|e| CampaignError::BadConfiguration {
        reason: format!("cannot pool {ports}-port memories: {e}"),
    })
}

/// The lane-sliced form of [`map_trials`] for per-fault measurement
/// campaigns: faults are packed `LaneRam::<K>::LANES` per [`LaneRam`]
/// chunk and measured by one `batch_trial` pass per batch — every fault
/// family lane-batches, so there is no scalar remainder and
/// `scalar_trial` serves only as the degradation oracle. Results land by
/// **fault index**, so the output is deterministic and identical for any
/// parallelism policy *and any lane width* — and, when the two trial
/// functions measure the same thing (the contract callers are
/// property-tested against), identical to the all-scalar [`map_trials`]
/// sweep.
///
/// `batch_trial` receives a healed, zero-reset [`LaneRam`] (pooled with
/// `ports` ports, so multi-port measurement programs batch too) whose
/// lanes `0..k` carry the batch's faults in index order and must push
/// exactly one result per injected lane, in lane order (checked).
/// `scalar_trial` receives the fault's universe index and a pooled
/// memory with the fault **already injected** (unlike the raw
/// [`map_trials`], which hands the closure a pristine device).
///
/// # Panics
///
/// Re-raises whatever [`try_map_trials_batched`] reports: an invalid
/// port count or a wrong `batch_trial` result count panics with its
/// configuration message (containing the historical "one result per
/// injected lane" phrase), a caught scalar panic resumes with its
/// original payload. A *batch* panic does not surface here at all — it
/// degrades to the scalar oracle (see the fallible form).
pub fn map_trials_batched<const K: usize, T, FB, FS>(
    geom: Geometry,
    ports: usize,
    faults: &[FaultKind],
    parallelism: Parallelism,
    batch_trial: FB,
    scalar_trial: FS,
) -> Vec<T>
where
    T: Send + Sync,
    FB: Fn(&mut LaneRam<K>, &mut Vec<T>) + Sync,
    FS: Fn(usize, &mut Ram) -> T + Sync,
{
    try_map_trials_batched(geom, ports, faults, parallelism, batch_trial, scalar_trial)
        .unwrap_or_else(|e| e.raise())
        .0
}

/// The fallible form of [`map_trials_batched`]. Returns the per-fault
/// results plus the number of **degraded batches**: a lane batch whose
/// `batch_trial` panicked is retried fault-by-fault on the scalar oracle
/// (`scalar_trial`) instead of killing the run, and counted. Because the
/// scalar trial measures the same thing (the contract callers are
/// property-tested against), a degraded run's results are still exact.
///
/// # Errors
///
/// [`CampaignError::BadConfiguration`] for an invalid port count or a
/// `batch_trial` yielding a wrong result count;
/// [`CampaignError::WorkerPanic`] when a *scalar* trial panicked
/// (including a degraded retry — a batch that fails both engines is a
/// real failure, not a batching artifact).
pub fn try_map_trials_batched<const K: usize, T, FB, FS>(
    geom: Geometry,
    ports: usize,
    faults: &[FaultKind],
    parallelism: Parallelism,
    batch_trial: FB,
    scalar_trial: FS,
) -> Result<(Vec<T>, usize), CampaignError>
where
    T: Send + Sync,
    FB: Fn(&mut LaneRam<K>, &mut Vec<T>) + Sync,
    FS: Fn(usize, &mut Ram) -> T + Sync,
{
    validate_ports(geom, ports)?;
    let lanes_per = LaneRam::<K>::LANES;
    // Every fault family lane-batches (the scalar remainder seam was
    // retired once it proved permanently empty), so batch membership is
    // plain index arithmetic: batch `b` owns fault indices
    // `b*lanes_per .. (b+1)*lanes_per`.
    let n_batches = faults.len().div_ceil(lanes_per);
    let results: Vec<OnceLock<T>> = (0..faults.len()).map(|_| OnceLock::new()).collect();
    let degraded = AtomicUsize::new(0);
    let panic_slot: PanicSlot = Mutex::new(None);
    let error_slot: Mutex<Option<CampaignError>> = Mutex::new(None);
    let failed = AtomicBool::new(false);
    let run_batch = |b: usize, ram: &mut LaneRam<K>, out: &mut Vec<T>| {
        let lanes = (b * lanes_per)..((b + 1) * lanes_per).min(faults.len());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            ram.eject_faults();
            ram.reset_to(0);
            for (lane, fi) in lanes.clone().enumerate() {
                ram.inject(faults[fi].clone(), lane).expect("campaign faults are valid");
            }
            out.clear();
            batch_trial(ram, out);
        }));
        match attempt {
            Ok(()) => {
                if out.len() != lanes.len() {
                    let mut slot = error_slot.lock().expect("error slot lock");
                    if slot.is_none() {
                        *slot = Some(CampaignError::BadConfiguration {
                            reason: format!(
                                "batch trial must yield one result per injected lane — got {} \
                                 results for {} lanes",
                                out.len(),
                                lanes.len()
                            ),
                        });
                    }
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
                for (fi, v) in lanes.zip(out.drain(..)) {
                    // Batch indices are claimed uniquely, so each slot is
                    // set once.
                    let _ = results[fi].set(v);
                }
            }
            Err(_) => {
                // Graceful degradation: the whole batch retries on the
                // scalar oracle; only a retry that *also* fails is fatal.
                degraded.fetch_add(1, Ordering::Relaxed);
                let mut scalar = Ram::with_ports(geom, ports).expect("valid port count");
                for fi in lanes {
                    scalar.eject_faults();
                    scalar.reset_to(0);
                    let retry = catch_unwind(AssertUnwindSafe(|| {
                        scalar.inject(faults[fi].clone()).expect("campaign faults are valid");
                        scalar_trial(fi, &mut scalar)
                    }));
                    match retry {
                        Ok(v) => {
                            let _ = results[fi].set(v);
                        }
                        Err(payload) => {
                            record_panic(&panic_slot, (fi, fi + 1), payload);
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
        }
    };
    let workers = parallelism.workers(faults.len()).min(n_batches.max(1));
    if workers <= 1 {
        // Single-thread fast path: batches run in order on the calling
        // thread, with no claim counter.
        let mut ram = LaneRam::<K>::with_ports(geom, ports).expect("valid port count");
        let mut out = Vec::new();
        for b in 0..n_batches {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            run_batch(b, &mut ram, &mut out);
        }
    } else {
        let next = AtomicUsize::new(0);
        let batch_worker = || {
            let mut ram = LaneRam::<K>::with_ports(geom, ports).expect("valid port count");
            let mut out = Vec::new();
            loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let b = next.fetch_add(1, Ordering::Relaxed);
                if b >= n_batches {
                    break;
                }
                run_batch(b, &mut ram, &mut out);
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(batch_worker);
            }
        });
    }
    if let Some(e) = error_slot.into_inner().expect("error slot lock") {
        return Err(e);
    }
    if let Some((chunk, payload)) = panic_slot.into_inner().expect("panic slot lock") {
        return Err(CampaignError::WorkerPanic { chunk, payload });
    }
    let values = results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every fault index was dispatched"))
        .collect();
    Ok((values, degraded.load(Ordering::Relaxed)))
}

/// A configured fault-simulation campaign: a fault set × a runner × data
/// backgrounds, with a parallelism policy.
///
/// Construction is cheap; nothing runs until [`Campaign::run`],
/// [`Campaign::detections`] or one of the other drivers is called.
#[derive(Debug)]
pub struct Campaign<'a, R> {
    geom: Geometry,
    faults: &'a [FaultKind],
    runner: R,
    backgrounds: Vec<u64>,
    ports: usize,
    parallelism: Parallelism,
    lane_batching: bool,
    lane_width: LaneWidth,
    slicing: bool,
    topology: Option<Topology>,
    name: String,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    checkpoint: Option<(PathBuf, usize)>,
    progress: Option<ProgressHook<'a>>,
    #[cfg(any(test, feature = "chaos"))]
    chaos: Option<std::sync::Arc<chaos::ChaosPlan>>,
}

/// One completed segment of a campaign, as reported to a
/// [`Campaign::with_progress`] sink: the contiguous universe slice
/// `[start, end)` whose verdicts just became final.
///
/// Segments are reported **in order** and tile the evaluated prefix of
/// the universe exactly — `start` of each call equals `end` of the
/// previous one (the first call has `start == 0`, which on a resumed
/// checkpointed campaign covers the whole restored prefix in one call).
/// A campaign stopped early (deadline, cancellation) simply stops
/// reporting; segments never arrive out of order or overlap.
#[derive(Debug)]
pub struct SegmentProgress<'s> {
    /// First universe index of the segment (inclusive).
    pub start: usize,
    /// One past the last universe index of the segment (exclusive).
    pub end: usize,
    /// Final verdicts for `[start, end)`, keyed by `index - start`.
    pub verdicts: &'s [bool],
}

/// The configured streaming sink: segment cadence plus the callback.
/// Boxed so [`Campaign`] stays nameable; the manual [`fmt::Debug`] keeps
/// the campaign's derive working without demanding one of the closure.
struct ProgressHook<'a> {
    every: usize,
    sink: Box<dyn Fn(SegmentProgress<'_>) + Send + Sync + 'a>,
}

impl std::fmt::Debug for ProgressHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressHook").field("every", &self.every).finish_non_exhaustive()
    }
}

/// Campaign progress as the resilient driver reports it: the verdict
/// table (meaningful on `[0, evaluated)` when stopped early), the stop
/// cause if any, and the degradation counter.
struct Progress {
    verdicts: Vec<bool>,
    evaluated: usize,
    stopped: Option<StopCause>,
    degraded_batches: usize,
    elapsed: Duration,
}

/// How one segment's fan-out ended.
enum SegmentOutcome {
    /// Every trial of the segment completed.
    Done,
    /// The deadline or a cancellation stopped the fan-out mid-segment.
    Stopped(StopCause),
    /// A worker panic poisoned a chunk; everything else drained.
    Panicked { chunk: (usize, usize), payload: String },
}

/// The shared per-run state the segment drivers write into.
struct DriveCtx<'t> {
    /// Per-fault verdicts, keyed by universe index.
    table: &'t [AtomicBool],
    /// Per-fault completion flags — the checkpoint cursor is the length
    /// of the contiguous `true` prefix.
    done: &'t [AtomicBool],
    /// Deadline/cancellation, polled at chunk granularity.
    control: &'t RunControl,
    /// Lane batches degraded to the scalar oracle so far.
    degraded: &'t AtomicUsize,
}

impl<'a, R: FaultRunner> Campaign<'a, R> {
    /// A campaign over every instance of an enumerated universe.
    pub fn new(universe: &'a FaultUniverse, runner: R) -> Campaign<'a, R> {
        Campaign::over(universe.geometry(), universe.faults(), runner)
            .with_topology(universe.topology().clone())
    }

    /// A campaign over an explicit fault list (e.g. the escapes of a
    /// previous campaign, or a topological NPSF set).
    pub fn over(geom: Geometry, faults: &'a [FaultKind], runner: R) -> Campaign<'a, R> {
        Campaign {
            geom,
            faults,
            runner,
            backgrounds: vec![0],
            ports: 1,
            parallelism: Parallelism::Auto,
            lane_batching: true,
            lane_width: LaneWidth::default(),
            slicing: true,
            topology: None,
            name: "campaign".to_string(),
            deadline: None,
            cancel: None,
            checkpoint: None,
            progress: None,
            #[cfg(any(test, feature = "chaos"))]
            chaos: None,
        }
    }

    /// Sets the data backgrounds; a fault counts as detected when **any**
    /// background run flags it, and later backgrounds are skipped once one
    /// does (the per-fault early exit).
    ///
    /// # Panics
    ///
    /// Panics on an empty background list.
    pub fn with_backgrounds(mut self, backgrounds: &[u64]) -> Campaign<'a, R> {
        assert!(!backgrounds.is_empty(), "at least one data background required");
        self.backgrounds = backgrounds.to_vec();
        self
    }

    /// Number of ports on the pooled memories (default 1).
    pub fn with_ports(mut self, ports: usize) -> Campaign<'a, R> {
        self.ports = ports;
        self
    }

    /// Sets the parallelism policy (default [`Parallelism::Auto`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Campaign<'a, R> {
        self.parallelism = parallelism;
        self
    }

    /// Enables or disables the lane-sliced batch path (default enabled).
    /// With batching on, a campaign whose runner exposes a compiled
    /// program for every background ([`FaultRunner::batch_program`])
    /// evaluates its universe in lane chunks —
    /// [`LaneWidth::lanes`] trials per interpreter pass. There is no
    /// scalar remainder left: every modelled fault family and every
    /// program, multi-port π schedules included, batches; verdicts are
    /// bit-identical to the scalar path either way. Disable to measure
    /// or differential-test the scalar engine.
    pub fn with_lane_batching(mut self, enabled: bool) -> Campaign<'a, R> {
        self.lane_batching = enabled;
        self
    }

    /// Selects the lane-chunk width for the batched path (default
    /// [`LaneWidth::X512`]). A pure throughput knob: the verdict table,
    /// reports and checkpoints are bit-identical at every width, so
    /// checkpoints taken at one width resume correctly at another.
    pub fn with_lane_width(mut self, width: LaneWidth) -> Campaign<'a, R> {
        self.lane_width = width;
        self
    }

    /// Enables or disables activity-driven program slicing on the batched
    /// path (default enabled). With slicing on, each lane batch walks only
    /// the program ops whose address intersects the batch's span union —
    /// the cells its faults can actually perturb — and splices precomputed
    /// fault-free reference deltas over the gaps
    /// ([`prt_ram::ActivityIndex`]). The campaign additionally assembles
    /// batches by fault locality ([`prt_ram::fault_locality_key`]) so the
    /// faults sharing a chunk have tight span unions. Verdicts, reports
    /// and checkpoints are **bit-identical** either way (slicing, like the
    /// lane width, is deliberately not fingerprinted); disable to pin the
    /// full-pass oracle for measurement or differential testing.
    pub fn with_slicing(mut self, enabled: bool) -> Campaign<'a, R> {
        self.slicing = enabled;
        self
    }

    /// Declares the physical address [`Topology`] this campaign's fault
    /// universe was enumerated under. Faults carry **logical** addresses
    /// whatever the topology, so this knob never changes how trials
    /// execute — it exists so the checkpoint fingerprint can tell
    /// scrambles apart: a checkpoint written under one topology refuses
    /// to resume under another
    /// ([`CheckpointError::FingerprintMismatch`]). The identity topology
    /// hashes exactly like the pre-topology era, keeping old checkpoints
    /// valid. [`Campaign::new`] sets this automatically from the
    /// universe; campaigns built with [`Campaign::over`] on scrambled
    /// fault lists should declare it explicitly.
    ///
    /// # Panics
    ///
    /// Panics when the topology's cell count disagrees with the
    /// campaign geometry.
    pub fn with_topology(mut self, topology: Topology) -> Campaign<'a, R> {
        assert_eq!(
            topology.cells(),
            self.geom.cells(),
            "topology cell count must match the campaign geometry"
        );
        self.topology = if topology.is_identity() { None } else { Some(topology) };
        self
    }

    /// Sets the report name (default `"campaign"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Campaign<'a, R> {
        self.name = name.into();
        self
    }

    /// Gives the run a time budget. The budget is polled at chunk
    /// granularity; when it runs out, [`Campaign::try_run`] returns a
    /// report explicitly marked partial ([`CoverageReport::partial`])
    /// covering the evaluated universe prefix, and
    /// [`Campaign::try_detections`] returns
    /// [`CampaignError::DeadlineExceeded`]. The clock starts when a
    /// driver is called, not when the campaign is configured.
    pub fn with_deadline(mut self, deadline: Duration) -> Campaign<'a, R> {
        self.deadline = Some(deadline);
        self
    }

    /// Arms cooperative cancellation: any clone of `token` can stop the
    /// run at the next chunk boundary, yielding a partial report exactly
    /// like an expired deadline. Cancellation is sticky — a campaign
    /// armed with an already-fired token stops before its first trial.
    pub fn with_cancel(mut self, token: &CancelToken) -> Campaign<'a, R> {
        self.cancel = Some(token.clone());
        self
    }

    /// Checkpoints progress to `path` every `every` trials (clamped to
    /// ≥ 1), and **resumes** from `path` when a compatible checkpoint is
    /// already there. Snapshots are written atomically (temp file +
    /// rename), versioned, fingerprinted against this campaign's
    /// geometry/universe/programs/backgrounds, and validated on load —
    /// a checkpoint of a different run is refused with
    /// [`CheckpointError::FingerprintMismatch`], never silently mixed
    /// in. A resumed campaign produces a report **bit-identical** to an
    /// uninterrupted run, at any thread count: verdict slots are keyed
    /// by fault index, so the schedule never leaks into the table.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Campaign<'a, R> {
        self.checkpoint = Some((path.into(), every.max(1)));
        self
    }

    /// Streams progress: after every segment of (at most) `every` trials
    /// completes, `sink` receives the segment's final verdicts as a
    /// [`SegmentProgress`]. Segments arrive in order and tile the
    /// evaluated prefix exactly (see [`SegmentProgress`]), so a sink can
    /// reconstruct the verdict table — or per-class coverage deltas —
    /// incrementally; the terminal report stays bit-identical to an
    /// unhooked run. Composes with [`Campaign::with_checkpoint`]: the
    /// effective segment length is the smaller of the two cadences.
    /// `every` is clamped to ≥ 1. The sink runs on the driving thread,
    /// between segments — a slow sink throttles the campaign, not the
    /// verdicts.
    pub fn with_progress(
        mut self,
        every: usize,
        sink: impl Fn(SegmentProgress<'_>) + Send + Sync + 'a,
    ) -> Campaign<'a, R> {
        self.progress = Some(ProgressHook { every: every.max(1), sink: Box::new(sink) });
        self
    }

    /// Arms a chaos-injection plan (test builds only): deliberate worker
    /// kills, batch kills and cancellations at deterministic points, for
    /// the resilience suite.
    #[cfg(any(test, feature = "chaos"))]
    pub fn with_chaos(mut self, plan: std::sync::Arc<chaos::ChaosPlan>) -> Campaign<'a, R> {
        self.chaos = Some(plan);
        self
    }

    /// Chaos checkpoint before a primary scalar trial (no-op outside
    /// test builds, and in degraded retries — degradation must succeed).
    #[cfg(any(test, feature = "chaos"))]
    fn chaos_trial(&self, i: usize) {
        if let Some(plan) = &self.chaos {
            plan.trial_event(i);
        }
    }

    #[cfg(not(any(test, feature = "chaos")))]
    fn chaos_trial(&self, _i: usize) {}

    /// Chaos checkpoint before a lane batch (no-op outside test builds).
    #[cfg(any(test, feature = "chaos"))]
    fn chaos_batch(&self, first: usize) {
        if let Some(plan) = &self.chaos {
            plan.batch_event(first);
        }
    }

    #[cfg(not(any(test, feature = "chaos")))]
    fn chaos_batch(&self, _first: usize) {}

    /// Number of fault instances in the campaign.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the campaign has no fault instances.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn run_fault(&self, i: usize, ram: &mut Ram) -> bool {
        ram.inject(self.faults[i].clone()).expect("campaign faults are valid");
        for (bi, &bg) in self.backgrounds.iter().enumerate() {
            if bi > 0 {
                ram.reset_to(0);
            }
            if self.runner.detect(ram, bg) {
                return true;
            }
        }
        false
    }

    /// Per-fault verdicts in enumeration order. Deterministic: the result
    /// is independent of the parallelism policy because every trial is
    /// isolated on its own (pooled) memory — and of the lane-batching
    /// policy, because the batch engine is bitwise-exact per lane
    /// (property-tested in `tests/batch.rs`).
    ///
    /// # Panics
    ///
    /// Thin wrapper over [`Campaign::try_detections`]: configuration
    /// errors panic with the historical loud messages, caught worker
    /// panics resume with their original payload.
    pub fn detections(&self) -> Vec<bool> {
        self.try_detections().unwrap_or_else(|e| e.raise())
    }

    /// The fallible form of [`Campaign::detections`].
    ///
    /// # Errors
    ///
    /// The full [`CampaignError`] taxonomy: upfront configuration errors
    /// (geometry/port/background mismatches from
    /// [`FaultRunner::validate`], invalid port counts), checkpoint
    /// failures, [`CampaignError::WorkerPanic`] for a caught trial
    /// panic, and — because a verdict *vector* cannot be partial —
    /// [`CampaignError::DeadlineExceeded`] / [`CampaignError::Cancelled`]
    /// when a stop condition fired first (use [`Campaign::try_run`] for
    /// an explicitly-marked partial report instead).
    pub fn try_detections(&self) -> Result<Vec<bool>, CampaignError> {
        let progress = self.try_progress()?;
        match progress.stopped {
            None => Ok(progress.verdicts),
            Some(StopCause::DeadlineExceeded) => Err(CampaignError::DeadlineExceeded {
                elapsed: progress.elapsed,
                deadline: self.deadline.unwrap_or_default(),
                completed: progress.evaluated,
                total: self.faults.len(),
            }),
            Some(StopCause::Cancelled) => Err(CampaignError::Cancelled {
                completed: progress.evaluated,
                total: self.faults.len(),
            }),
        }
    }

    /// The resilient driver every campaign entry point sits on: validates
    /// the configuration upfront, resumes from a checkpoint when one is
    /// armed and compatible, then drives the universe in **segments**
    /// (the finer of the checkpoint and progress cadences per segment;
    /// the whole remainder when neither is armed), checkpointing the
    /// contiguous verdict prefix and reporting progress to the streaming
    /// sink after each. Worker panics poison only their chunk; deadline and
    /// cancellation stop the fan-out at chunk boundaries; a panicking
    /// lane batch degrades to the scalar oracle.
    fn try_progress(&self) -> Result<Progress, CampaignError> {
        self.runner.validate(self.geom, self.ports, &self.backgrounds)?;
        validate_ports(self.geom, self.ports)?;
        let total = self.faults.len();
        let fingerprint = self.checkpoint.as_ref().map(|_| self.fingerprint());
        let table: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        let done: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        let mut cursor = 0usize;
        if let (Some((path, _)), Some(fp)) = (&self.checkpoint, fingerprint) {
            if let Some(saved) = checkpoint::load_records::<bool>(path, fp, total)? {
                cursor = saved.len();
                for (i, verdict) in saved.into_iter().enumerate() {
                    table[i].store(verdict, Ordering::Relaxed);
                    done[i].store(true, Ordering::Relaxed);
                }
            }
        }
        // A hooked campaign resuming from a checkpoint reports the whole
        // restored prefix as one leading segment, so sinks always see
        // segments that tile `[0, evaluated)` — no silent gap.
        if cursor > 0 {
            if let Some(hook) = &self.progress {
                let prefix: Vec<bool> =
                    table[..cursor].iter().map(|b| b.load(Ordering::Relaxed)).collect();
                (hook.sink)(SegmentProgress { start: 0, end: cursor, verdicts: &prefix });
            }
        }
        let plan = self.batch_plan();
        // Activity indexes (one per background program) for the sliced
        // batch path: resolved once per campaign, before the segment loop
        // (the programs cache the compiled index, so repeat campaigns
        // over the same program share one build).
        let slice_plan: Option<Vec<Arc<ActivityIndex>>> = match (&plan, self.slicing) {
            (Some(programs), true) => Some(programs.iter().map(|p| p.activity_index()).collect()),
            _ => None,
        };
        // Locality-aware chunk assembly, width half: under slicing the
        // per-chunk active-op count grows with the chunk's span union, so
        // when spans barely overlap a wide chunk multiplies per-op plane
        // work for no dispatch amortisation. Pick the cheapest effective
        // width from the span-overlap cost model (never wider than the
        // configured knob — verdicts and checkpoints are width-invariant
        // by design, so this is pure scheduling).
        let drive_width = match &slice_plan {
            Some(_) => self.sliced_drive_width(),
            None => self.lane_width,
        };
        let degraded = AtomicUsize::new(0);
        let control = RunControl::new(self.deadline, self.cancel.clone());
        let mut stopped = None;
        // Segment length: the finer of the checkpoint cadence and the
        // progress cadence (one whole-remainder segment when neither is
        // armed).
        let step = self
            .checkpoint
            .as_ref()
            .map(|(_, every)| *every)
            .unwrap_or(usize::MAX)
            .min(self.progress.as_ref().map(|h| h.every).unwrap_or(usize::MAX));
        while cursor < total {
            let seg_start = cursor;
            let seg_end = cursor.saturating_add(step).min(total);
            let ctx =
                DriveCtx { table: &table, done: &done, control: &control, degraded: &degraded };
            let outcome =
                match &plan {
                    // The chunk width is a const generic: monomorphise the
                    // batched driver per width and dispatch on the knob.
                    Some(programs) => {
                        let slice = slice_plan.as_deref();
                        match drive_width {
                            LaneWidth::X64 => self
                                .drive_segment_batched::<1>(cursor, seg_end, programs, slice, &ctx),
                            LaneWidth::X256 => self
                                .drive_segment_batched::<4>(cursor, seg_end, programs, slice, &ctx),
                            LaneWidth::X512 => self
                                .drive_segment_batched::<8>(cursor, seg_end, programs, slice, &ctx),
                        }
                    }
                    None => self.drive_scalar_prefix(cursor, seg_end, &ctx),
                };
            while cursor < seg_end && done[cursor].load(Ordering::Relaxed) {
                cursor += 1;
            }
            if let (Some((path, _)), Some(fp)) = (&self.checkpoint, fingerprint) {
                let prefix: Vec<bool> =
                    table[..cursor].iter().map(|b| b.load(Ordering::Relaxed)).collect();
                checkpoint::save_records(path, fp, total, &prefix)?;
            }
            if cursor > seg_start {
                if let Some(hook) = &self.progress {
                    let verdicts: Vec<bool> = table[seg_start..cursor]
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    (hook.sink)(SegmentProgress {
                        start: seg_start,
                        end: cursor,
                        verdicts: &verdicts,
                    });
                }
            }
            match outcome {
                SegmentOutcome::Done => {}
                SegmentOutcome::Stopped(cause) => {
                    stopped = Some(cause);
                    break;
                }
                SegmentOutcome::Panicked { chunk, payload } => {
                    return Err(CampaignError::WorkerPanic { chunk, payload });
                }
            }
        }
        Ok(Progress {
            verdicts: table.into_iter().map(AtomicBool::into_inner).collect(),
            evaluated: cursor,
            stopped,
            degraded_batches: degraded.load(Ordering::Relaxed),
            elapsed: control.elapsed(),
        })
    }

    /// Fingerprint of everything that determines this campaign's verdict
    /// table: geometry, ports, backgrounds, the fault universe and the
    /// compiled program per background. The **schedule** is fingerprinted
    /// only by its discipline name — verdict slots are keyed by fault
    /// index, so thread count, chunking, lane packing and the lane-chunk
    /// width ([`LaneWidth`]) never change the table: a checkpoint taken
    /// at 64 lanes resumes correctly at 512 and vice versa, which is why
    /// the width is deliberately **not** hashed here.
    ///
    /// A non-identity [`Topology`] (see [`Campaign::with_topology`]) is
    /// hashed so a checkpoint written under one scramble refuses to
    /// resume under another; the identity topology is hashed as the
    /// absence of the field, keeping pre-topology checkpoints valid.
    fn fingerprint(&self) -> u64 {
        let mut fp = FingerprintBuilder::new();
        fp.push_str("prt-sim/campaign/v1");
        fp.push_str("schedule:fault-index/v1");
        if let Some(topology) = &self.topology {
            fp.push_str("topology");
            fp.push_debug(topology);
        }
        fp.push_debug(&self.geom);
        fp.push_u64(self.ports as u64);
        fp.push_u64(self.backgrounds.len() as u64);
        for &bg in &self.backgrounds {
            fp.push_u64(bg);
        }
        fp.push_u64(self.faults.len() as u64);
        for fault in self.faults {
            fp.push_debug(fault);
        }
        for &bg in &self.backgrounds {
            match self.runner.batch_program(bg) {
                Some(program) => fp.push_debug(program),
                None => fp.push_str("interpreted"),
            }
        }
        fp.finish()
    }

    /// The effective lane-chunk width for **sliced** batched segments:
    /// the cheapest of the widths not exceeding the configured knob,
    /// under the span-overlap cost model. A sliced chunk executes one op
    /// per distinct span cell visit, so its work is roughly
    /// `distinct-keys-in-chunk × (F + W·K)` with `F` the per-op fixed
    /// cost (dispatch, gap splice, bucket lookups) and `W·K` the
    /// K-chunk-word plane loops; `F/W ≈ 11` measured on the batch
    /// interpreter. Dense universes (every lane sharing every cell)
    /// favour the widest chunks exactly as the full pass does; sparse
    /// ones (single-cell faults on a large array) favour narrow chunks,
    /// whose span unions — and active-op counts — shrink with the lane
    /// count. Width never affects verdicts, reports or checkpoints (the
    /// fingerprint deliberately excludes it), so this is pure
    /// scheduling.
    fn sliced_drive_width(&self) -> LaneWidth {
        let mut keys: Vec<usize> = self.faults.iter().map(fault_locality_key).collect();
        if !keys.is_sorted() {
            // The driver sorts each segment into locality order before
            // assembling chunks; model the post-assembly adjacency.
            keys.sort_unstable();
        }
        let mut best = LaneWidth::X64;
        let mut best_cost = u64::MAX;
        for width in [LaneWidth::X512, LaneWidth::X256, LaneWidth::X64] {
            if width.lanes() > self.lane_width.lanes() {
                continue;
            }
            let chunk = width.lanes();
            let k = (chunk / 64) as u64;
            let mut distinct = 0u64;
            for (i, &key) in keys.iter().enumerate() {
                if i % chunk == 0 || keys[i - 1] != key {
                    distinct += 1;
                }
            }
            let cost = distinct * (11 + k);
            // Strict inequality: ties go to the widest width (fewer
            // chunks, less per-chunk driver overhead).
            if cost < best_cost {
                best_cost = cost;
                best = width;
            }
        }
        best
    }

    /// Scalar fan-out over the contiguous range `[start, end)`.
    fn drive_scalar_prefix(&self, start: usize, end: usize, ctx: &DriveCtx<'_>) -> SegmentOutcome {
        self.drive_scalar(end - start, &|k| start + k, ctx)
    }

    /// Chunked work-stealing scalar fan-out over `count` trials whose
    /// universe indices are `map_index(0..count)`. Each worker pools one
    /// [`Ram`]; chunks are claimed atomically; every chunk body runs
    /// under [`catch_unwind`], so a panic poisons exactly one chunk (the
    /// other workers drain and the first panic is reported). The control
    /// is polled before every claim.
    fn drive_scalar(
        &self,
        count: usize,
        map_index: &(dyn Fn(usize) -> usize + Sync),
        ctx: &DriveCtx<'_>,
    ) -> SegmentOutcome {
        let workers = self.parallelism.workers(count);
        let chunk = (count / (workers * 8)).clamp(1, MAX_CHUNK);
        let n_chunks = count.div_ceil(chunk);
        let panicked = AtomicBool::new(false);
        let panic_slot: PanicSlot = Mutex::new(None);
        let stop_slot: Mutex<Option<StopCause>> = Mutex::new(None);
        let run_chunk = |c: usize, ram: &mut Ram| {
            let (lo, hi) = (c * chunk, ((c + 1) * chunk).min(count));
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                for k in lo..hi {
                    let i = map_index(k);
                    self.chaos_trial(i);
                    ram.eject_faults();
                    ram.reset_to(0);
                    let verdict = self.run_fault(i, ram);
                    ctx.table[i].store(verdict, Ordering::Relaxed);
                    ctx.done[i].store(true, Ordering::Relaxed);
                }
            }));
            if let Err(payload) = attempt {
                record_panic(&panic_slot, (map_index(lo), map_index(hi - 1) + 1), payload);
                panicked.store(true, Ordering::Relaxed);
            }
        };
        if workers <= 1 {
            // Single-thread fast path: no claim counter, no fan-out —
            // chunks run in order on the calling thread with the same
            // per-chunk panic isolation and stop polls as the fan-out.
            let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
            for c in 0..n_chunks {
                if panicked.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(cause) = ctx.control.stop_cause() {
                    record_stop(&stop_slot, cause);
                    break;
                }
                run_chunk(c, &mut ram);
            }
        } else {
            let next = AtomicUsize::new(0);
            let worker = || {
                let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
                loop {
                    if panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(cause) = ctx.control.stop_cause() {
                        record_stop(&stop_slot, cause);
                        break;
                    }
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    run_chunk(c, &mut ram);
                }
            };
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }
        if let Some((chunk, payload)) = panic_slot.into_inner().expect("panic slot lock") {
            return SegmentOutcome::Panicked { chunk, payload };
        }
        if let Some(cause) = stop_slot.into_inner().expect("stop slot lock") {
            return SegmentOutcome::Stopped(cause);
        }
        SegmentOutcome::Done
    }

    /// Lane-batched fan-out over the segment `[start, end)`: faults are
    /// packed `LaneRam::<K>::LANES` per [`LaneRam`] chunk (one
    /// interpreter pass per batch per background, with the
    /// cross-background early exit per lane). Every fault family
    /// lane-batches, so the segment splits into batches by plain index
    /// arithmetic — no partition pass, no scalar remainder. Workers
    /// claim **whole chunks** from a shared counter, so the thread
    /// fan-out composes
    /// with the lane width (threads × lanes trials in flight) while
    /// verdicts stay keyed by fault index — bit-identical at any thread
    /// count and any width. A batch whose interpreter pass panics
    /// **degrades**: its faults retry one-by-one on the scalar oracle
    /// and the degradation counter is bumped — only a retry that also
    /// fails poisons the run. With an activity-slice plan, batches are
    /// assembled in fault-locality order and each interpreter pass walks
    /// only the ops intersecting the batch's span union
    /// ([`TestProgram::detect_batch_sliced`]) — still bit-identical.
    fn drive_segment_batched<const K: usize>(
        &self,
        start: usize,
        end: usize,
        programs: &[&TestProgram],
        slice: Option<&[Arc<ActivityIndex>]>,
        ctx: &DriveCtx<'_>,
    ) -> SegmentOutcome {
        let lanes_per = LaneRam::<K>::LANES;
        let count = end - start;
        let n_batches = count.div_ceil(lanes_per);
        // Locality-aware chunk assembly: with slicing on, the segment is
        // evaluated in `(locality key, index)` order so the faults sharing
        // a lane batch have tight span unions (coupling faults group by
        // their aggressor/victim window). Verdicts stay keyed by fault
        // index, so the permutation never reaches reports or checkpoints.
        let order: Vec<u32> = if slice.is_some() {
            // Enumerated universes arrive in locality order already — one
            // early-exit scan detects that and skips the permutation
            // build. Otherwise: one key computation per fault, then a
            // primitive-tuple sort (re-deriving the key inside the
            // comparator dominates the sort itself on large segments).
            let mut prev = 0usize;
            let sorted = self.faults[start..end].iter().all(|f| {
                let k = fault_locality_key(f);
                let ok = k >= prev;
                prev = k;
                ok
            });
            if sorted {
                (start as u32..end as u32).collect()
            } else {
                let mut keyed: Vec<(usize, u32)> = (start as u32..end as u32)
                    .map(|i| (fault_locality_key(&self.faults[i as usize]), i))
                    .collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, i)| i).collect()
            }
        } else {
            (start as u32..end as u32).collect()
        };
        let panicked = AtomicBool::new(false);
        let panic_slot: PanicSlot = Mutex::new(None);
        let stop_slot: Mutex<Option<StopCause>> = Mutex::new(None);
        let run_batch = |b: usize, ram: &mut LaneRam<K>, active: &mut ActiveSet| {
            let batch = &order[b * lanes_per..((b + 1) * lanes_per).min(count)];
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                // Chaos keys batches by schedule position (identical to
                // the first fault index when assembly is unsorted), so
                // kill targets stay width-based under locality sorting.
                self.chaos_batch(start + b * lanes_per);
                ram.eject_faults();
                ram.reset_to(0);
                for (lane, &fi) in batch.iter().enumerate() {
                    ram.inject(self.faults[fi as usize].clone(), lane)
                        .expect("campaign faults are valid");
                }
                let full = ram.active_lanes();
                let mut detected = LaneChunk::<K>::ZERO;
                for (bi, program) in programs.iter().enumerate() {
                    if bi > 0 {
                        // The per-fault early exit across backgrounds,
                        // lane style: stop once every lane is flagged.
                        if detected == full {
                            break;
                        }
                        ram.reset_to(0);
                    }
                    detected |= match slice {
                        Some(indexes) => {
                            active.clear();
                            for &fi in batch {
                                active.insert_fault(&self.faults[fi as usize]);
                            }
                            active.finalize(&indexes[bi]);
                            program.detect_batch_sliced(ram, &indexes[bi], active)
                        }
                        None => program.detect_batch(ram),
                    };
                }
                detected
            }));
            match attempt {
                Ok(detected) => {
                    for (lane, &fi) in batch.iter().enumerate() {
                        ctx.table[fi as usize].store(detected.get(lane), Ordering::Relaxed);
                        ctx.done[fi as usize].store(true, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    // Graceful degradation: retry the batch on the scalar
                    // oracle (which produces bit-identical verdicts).
                    ctx.degraded.fetch_add(1, Ordering::Relaxed);
                    let mut scalar =
                        Ram::with_ports(self.geom, self.ports).expect("valid port count");
                    for &fi in batch {
                        let fi = fi as usize;
                        scalar.eject_faults();
                        scalar.reset_to(0);
                        let retry =
                            catch_unwind(AssertUnwindSafe(|| self.run_fault(fi, &mut scalar)));
                        match retry {
                            Ok(verdict) => {
                                ctx.table[fi].store(verdict, Ordering::Relaxed);
                                ctx.done[fi].store(true, Ordering::Relaxed);
                            }
                            Err(payload) => {
                                record_panic(&panic_slot, (fi, fi + 1), payload);
                                panicked.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                }
            }
        };
        let workers = self.parallelism.workers(count).min(n_batches.max(1));
        if workers <= 1 {
            // Single-thread fast path: no claim counter, no fan-out —
            // walk the batches in order on the calling thread. The
            // per-batch catch_unwind (degradation) and stop polls are
            // retained, so failure semantics match the fan-out exactly.
            let mut ram =
                LaneRam::<K>::with_ports(self.geom, self.ports).expect("valid port count");
            let mut active = ActiveSet::new();
            for b in 0..n_batches {
                if panicked.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(cause) = ctx.control.stop_cause() {
                    record_stop(&stop_slot, cause);
                    break;
                }
                run_batch(b, &mut ram, &mut active);
            }
        } else {
            let next = AtomicUsize::new(0);
            let worker = || {
                let mut ram =
                    LaneRam::<K>::with_ports(self.geom, self.ports).expect("valid port count");
                let mut active = ActiveSet::new();
                loop {
                    if panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(cause) = ctx.control.stop_cause() {
                        record_stop(&stop_slot, cause);
                        break;
                    }
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= n_batches {
                        break;
                    }
                    run_batch(b, &mut ram, &mut active);
                }
            };
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }
        if let Some((chunk, payload)) = panic_slot.into_inner().expect("panic slot lock") {
            return SegmentOutcome::Panicked { chunk, payload };
        }
        if let Some(cause) = stop_slot.into_inner().expect("stop slot lock") {
            return SegmentOutcome::Stopped(cause);
        }
        SegmentOutcome::Done
    }

    /// The compiled programs (one per background) to batch with, when the
    /// campaign is eligible: batching enabled and every background
    /// resolves to a program on this geometry. Multi-port programs are
    /// no longer special-cased — the batch interpreter runs `CycleN`
    /// schedules natively; [`TestProgram::lane_batchable`] is consulted
    /// only as the opt-out seam (always `true` today).
    fn batch_plan(&self) -> Option<Vec<&TestProgram>> {
        if !self.lane_batching {
            return None;
        }
        let programs: Vec<&TestProgram> = self
            .backgrounds
            .iter()
            .map(|&bg| self.runner.batch_program(bg))
            .collect::<Option<_>>()?;
        // Geometry mismatches fall through to the scalar path, which
        // surfaces them with its usual loud panic.
        programs.iter().all(|p| p.lane_batchable() && p.geometry() == self.geom).then_some(programs)
    }

    /// The seed's original inner loop — a fresh [`Ram`] allocated per
    /// (fault, background) trial, strictly sequential. Kept as the
    /// differential-testing oracle and the benchmark baseline the pooled
    /// engine is measured against; produces bit-identical verdicts.
    pub fn detections_reference(&self) -> Vec<bool> {
        self.faults
            .iter()
            .map(|fault| {
                for &bg in &self.backgrounds {
                    let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
                    ram.inject(fault.clone()).expect("campaign faults are valid");
                    if self.runner.detect(&mut ram, bg) {
                        return true;
                    }
                }
                false
            })
            .collect()
    }

    /// Indices of the faults that escaped (were not detected).
    pub fn escapes(&self) -> Vec<usize> {
        self.detections().into_iter().enumerate().filter_map(|(i, d)| (!d).then_some(i)).collect()
    }

    /// Number of detected faults.
    pub fn count_detected(&self) -> usize {
        self.detections().into_iter().filter(|&d| d).count()
    }

    /// Index of the first escaping fault, or `None` when coverage is
    /// complete. Fail-fast: sequential campaigns stop at the first escape;
    /// parallel campaigns stop refining once no smaller index can escape.
    /// The result equals `self.escapes().first()` for any thread count.
    /// Always runs the scalar engine — the fail-fast scan visits a prefix
    /// of the universe, where batch packing would mostly evaluate trials
    /// whose verdicts are then discarded.
    pub fn first_escape(&self) -> Option<usize> {
        let count = self.faults.len();
        let workers = self.parallelism.workers(count);
        if workers <= 1 {
            let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
            return (0..count).find(|&i| {
                ram.eject_faults();
                ram.reset_to(0);
                !self.run_fault(i, &mut ram)
            });
        }
        let best = AtomicUsize::new(usize::MAX);
        let next = AtomicUsize::new(0);
        let chunk = (count / (workers * 8)).clamp(1, MAX_CHUNK);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= count || start >= best.load(Ordering::Relaxed) {
                            break;
                        }
                        for i in start..(start + chunk).min(count) {
                            // Indices past a known escape cannot improve the
                            // minimum; indices below it are all still visited,
                            // so the final value is the true first escape.
                            if i >= best.load(Ordering::Relaxed) {
                                break;
                            }
                            ram.eject_faults();
                            ram.reset_to(0);
                            if !self.run_fault(i, &mut ram) {
                                best.fetch_min(i, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
        });
        let found = best.into_inner();
        (found != usize::MAX).then_some(found)
    }

    /// Runs the campaign and aggregates per-class coverage. The report is
    /// byte-identical to the sequential reference path regardless of the
    /// parallelism policy: workers only fill the per-fault verdict table,
    /// and rows are tallied in enumeration order afterwards.
    ///
    /// # Panics
    ///
    /// Thin wrapper over [`Campaign::try_run`]: configuration errors
    /// panic with the historical loud messages, caught worker panics
    /// resume with their original payload.
    pub fn run(&self) -> CoverageReport {
        self.try_run().unwrap_or_else(|e| e.raise())
    }

    /// The fallible form of [`Campaign::run`]. A run stopped by its
    /// deadline or a cancellation is **not** an error here: it returns
    /// `Ok` with a report explicitly marked partial
    /// ([`CoverageReport::partial`]) whose rows tally the evaluated
    /// universe prefix — detected-so-far plus a cursor instead of
    /// nothing. Lane batches that degraded to the scalar oracle are
    /// counted in [`CoverageReport::degraded_batches`].
    ///
    /// # Errors
    ///
    /// Configuration errors ([`FaultRunner::validate`] and port-pool
    /// validation), [`CampaignError::Checkpoint`] when an armed
    /// checkpoint cannot be saved/loaded or belongs to a different run,
    /// and [`CampaignError::WorkerPanic`] when a trial panicked (with
    /// progress up to the poisoned chunk checkpointed first, when
    /// checkpointing is on).
    pub fn try_run(&self) -> Result<CoverageReport, CampaignError> {
        let progress = self.try_progress()?;
        let mut tally = ClassTally::new();
        for (fault, &detected) in
            self.faults.iter().zip(&progress.verdicts).take(progress.evaluated)
        {
            tally.record(fault.mnemonic(), detected);
        }
        let mut report = tally.into_report(self.name.clone());
        report.set_degraded_batches(progress.degraded_batches);
        if let Some(cause) = progress.stopped {
            report.set_partial(PartialCoverage {
                evaluated: progress.evaluated,
                total: self.faults.len(),
                cause,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::UniverseSpec;
    use std::sync::atomic::AtomicUsize;

    /// `w0 ⇑(r0) w1 ⇑(r1)`-ish toy test with full SAF coverage.
    fn toy_runner(ram: &mut Ram, _bg: u64) -> bool {
        let n = ram.geometry().cells();
        let mask = ram.geometry().data_mask();
        for a in 0..n {
            ram.write(a, 0);
        }
        for a in 0..n {
            if ram.read(a) != 0 {
                return true;
            }
            ram.write(a, mask);
        }
        (0..n).any(|a| {
            let got = ram.read(a) != mask;
            ram.write(a, 0);
            got
        })
    }

    fn universe() -> FaultUniverse {
        FaultUniverse::enumerate(Geometry::bom(10), &UniverseSpec::full())
    }

    #[test]
    fn parallel_matches_sequential_and_reference() {
        let u = universe();
        let seq =
            Campaign::new(&u, toy_runner).with_parallelism(Parallelism::Sequential).detections();
        let par =
            Campaign::new(&u, toy_runner).with_parallelism(Parallelism::Threads(4)).detections();
        let reference = Campaign::new(&u, toy_runner).detections_reference();
        assert_eq!(seq, par);
        assert_eq!(seq, reference);
    }

    #[test]
    fn reports_identical_across_thread_counts() {
        let u = universe();
        let base = Campaign::new(&u, toy_runner)
            .with_parallelism(Parallelism::Sequential)
            .with_name("toy")
            .run();
        for threads in [2usize, 3, 8] {
            let r = Campaign::new(&u, toy_runner)
                .with_parallelism(Parallelism::Threads(threads))
                .with_name("toy")
                .run();
            assert_eq!(base, r, "threads={threads}");
        }
        assert!(base.class("SAF").unwrap().complete());
    }

    #[test]
    fn multi_background_early_exit() {
        // SAF-only: the toy runner has full stuck-at coverage.
        let u = FaultUniverse::enumerate(
            Geometry::bom(6),
            &UniverseSpec { saf: true, ..UniverseSpec::default() },
        );
        let calls = AtomicUsize::new(0);
        let runner = |ram: &mut Ram, bg: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            // Only background 1 ever detects anything.
            bg == 1 && toy_runner(ram, bg)
        };
        let det = Campaign::new(&u, runner)
            .with_backgrounds(&[1, 0, 0, 0])
            .with_parallelism(Parallelism::Sequential)
            .detections();
        // Every stuck-at is caught on the first background, so exactly one
        // runner call per fault.
        assert!(det.iter().all(|&d| d));
        assert_eq!(calls.load(Ordering::Relaxed), u.len());
    }

    #[test]
    fn backgrounds_reset_state_between_runs() {
        let u = FaultUniverse::enumerate(Geometry::bom(4), &UniverseSpec::single_cell());
        // A runner that dirties the RAM and detects nothing: the second
        // background must still observe a pristine store.
        let runner = |ram: &mut Ram, bg: u64| {
            if bg == 0 {
                ram.write(0, 1);
                false
            } else {
                ram.read(0) == 1 // dirty state leaked from background 0
            }
        };
        let det = Campaign::new(&u, runner)
            .with_backgrounds(&[0, 1])
            .with_parallelism(Parallelism::Sequential)
            .detections();
        // Cell-0 faults can make the leak check misfire legitimately
        // (SA1@0 reads 1 even on a clean store); every other instance must
        // see a clean device on background 1.
        for (i, d) in det.iter().enumerate() {
            if !matches!(
                u.faults()[i],
                FaultKind::StuckAt { cell: 0, .. } | FaultKind::Transition { cell: 0, .. }
            ) {
                assert!(!d, "fault {i}: state leaked across backgrounds");
            }
        }
    }

    #[test]
    fn escapes_and_first_escape_agree() {
        let u = universe();
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let c = Campaign::new(&u, toy_runner).with_parallelism(parallelism);
            let escapes = c.escapes();
            assert_eq!(c.first_escape(), escapes.first().copied());
            assert_eq!(c.count_detected(), u.len() - escapes.len());
        }
    }

    #[test]
    fn complete_campaign_has_no_first_escape() {
        let u = FaultUniverse::enumerate(
            Geometry::bom(8),
            &UniverseSpec { saf: true, ..UniverseSpec::default() },
        );
        let c = Campaign::new(&u, toy_runner).with_parallelism(Parallelism::Threads(3));
        assert_eq!(c.first_escape(), None);
        assert!(c.run().complete());
    }

    #[test]
    fn over_subset_campaign() {
        let u = universe();
        let all = Campaign::new(&u, toy_runner);
        let escapes = all.escapes();
        let escaped: Vec<FaultKind> = escapes.iter().map(|&i| u.faults()[i].clone()).collect();
        let sub = Campaign::over(u.geometry(), &escaped, toy_runner);
        assert_eq!(sub.len(), escaped.len());
        assert!(!sub.is_empty());
        assert_eq!(sub.count_detected(), 0, "escapes must still escape");
    }

    #[test]
    fn map_trials_collects_values_in_order() {
        // The generic campaign mode: per-trial measurements, not just
        // verdict bits — deterministic for any thread count.
        let seq = map_trials(Geometry::bom(4), 1, 200, Parallelism::Sequential, |i, ram| {
            ram.write(0, (i % 2) as u64);
            ram.read(0) + 10 * i as u64
        });
        for threads in [2usize, 4, 7] {
            let par =
                map_trials(Geometry::bom(4), 1, 200, Parallelism::Threads(threads), |i, ram| {
                    ram.write(0, (i % 2) as u64);
                    ram.read(0) + 10 * i as u64
                });
            assert_eq!(seq, par, "threads={threads}");
        }
        for (i, v) in seq.iter().enumerate() {
            assert_eq!(*v, (i % 2) as u64 + 10 * i as u64, "trial {i}");
        }
    }

    #[test]
    fn map_trials_batched_matches_scalar_map() {
        // The lane-sliced measurement mode must produce, fault for fault,
        // the same values as an all-scalar map_trials sweep, for any
        // thread count — over the full universe (every family batches).
        let u = universe();
        let prog = toy_program(u.geometry());
        let scalar: Vec<bool> =
            map_trials(u.geometry(), 1, u.len(), Parallelism::Sequential, |i, ram| {
                ram.inject(u.faults()[i].clone()).expect("valid");
                prog.detect(ram)
            });
        for threads in [1usize, 3, 7] {
            let batched = map_trials_batched(
                u.geometry(),
                1,
                u.faults(),
                Parallelism::Threads(threads),
                |lanes: &mut LaneRam, out: &mut Vec<bool>| {
                    let verdicts = prog.detect_batch(lanes);
                    for lane in 0..lanes.active_lanes().count_ones() as usize {
                        out.push(verdicts.get(lane));
                    }
                },
                |_, ram| prog.detect(ram),
            );
            assert_eq!(scalar, batched, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "one result per injected lane")]
    fn map_trials_batched_rejects_wrong_result_count() {
        let u = FaultUniverse::enumerate(Geometry::bom(4), &UniverseSpec::single_cell());
        let _ = map_trials_batched(
            u.geometry(),
            1,
            u.faults(),
            Parallelism::Sequential,
            |_lanes: &mut LaneRam, out: &mut Vec<bool>| out.push(true), // too few
            |_, _| true,
        );
    }

    #[test]
    fn run_trials_verdict_order() {
        let det =
            run_trials(Geometry::bom(4), 1, 100, Parallelism::Threads(4), |i, _ram| i % 3 == 0);
        for (i, d) in det.iter().enumerate() {
            assert_eq!(*d, i % 3 == 0, "trial {i}");
        }
    }

    /// The toy runner, compiled to the IR once for a given geometry.
    fn toy_program(geom: Geometry) -> TestProgram {
        let mut b = prt_ram::ProgramBuilder::new(geom).with_name("toy compiled");
        let n = geom.cells();
        let mask = geom.data_mask();
        for a in 0..n {
            b.write(a, 0);
        }
        for a in 0..n {
            b.read_expect(a, 0);
            b.write(a, mask);
        }
        for a in 0..n {
            b.read_expect(a, mask);
            b.write(a, 0);
        }
        b.build()
    }

    #[test]
    fn compiled_program_campaign_matches_interpreted() {
        let u = universe();
        let prog = toy_program(u.geometry());
        let interpreted = Campaign::new(&u, toy_runner).detections();
        let compiled = Campaign::new(&u, &prog).detections();
        assert_eq!(interpreted, compiled);
        for threads in [2usize, 5] {
            let par = Campaign::new(&u, &prog)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            assert_eq!(compiled, par, "threads={threads}");
        }
    }

    #[test]
    fn lane_batched_campaign_matches_scalar_engine() {
        // The full() universe mixes batchable (SAF/TF/CF…) and
        // scalar-only (AF/SOF/RDF…) families, so the partition and the
        // remainder path are both exercised. Verdicts must be identical
        // to the scalar engine for any thread count.
        let u = universe();
        let prog = toy_program(u.geometry());
        let scalar = Campaign::new(&u, &prog)
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        for parallelism in
            [Parallelism::Sequential, Parallelism::Threads(3), Parallelism::Threads(7)]
        {
            let batched = Campaign::new(&u, &prog).with_parallelism(parallelism).detections();
            assert_eq!(scalar, batched, "{parallelism:?}");
        }
        // The aggregated report is identical too.
        let a = Campaign::new(&u, &prog).with_name("toy").run();
        let b = Campaign::new(&u, &prog).with_name("toy").with_lane_batching(false).run();
        assert_eq!(a, b);
    }

    #[test]
    fn lane_batched_multi_background_matches_scalar() {
        let geom = Geometry::wom(6, 4).expect("geometry");
        let u = FaultUniverse::enumerate(
            geom,
            &UniverseSpec { intra_word: true, ..UniverseSpec::full() },
        );
        let bgs = [0u64, 0b0101];
        let bank = ProgramBank::new(bgs.map(|bg| {
            let mut b = prt_ram::ProgramBuilder::new(geom).with_background(bg);
            for a in 0..6 {
                b.write(a, bg);
            }
            for a in 0..6 {
                b.read_expect(a, bg);
                b.write(a, bg ^ 0xF);
            }
            for a in 0..6 {
                b.read_expect(a, bg ^ 0xF);
            }
            (bg, b.build())
        }));
        let scalar =
            Campaign::new(&u, &bank).with_backgrounds(&bgs).with_lane_batching(false).detections();
        for threads in [1usize, 4] {
            let batched = Campaign::new(&u, &bank)
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            assert_eq!(scalar, batched, "threads={threads}");
        }
    }

    #[test]
    fn interpreted_runners_have_no_batch_plan() {
        // A closure runner exposes no compiled program: the batch path
        // must decline and the scalar engine must serve the verdicts.
        let u = universe();
        let c = Campaign::new(&u, toy_runner);
        assert!(c.batch_plan().is_none());
        assert_eq!(c.detections(), Campaign::new(&u, toy_runner).detections_reference());
    }

    #[test]
    fn multi_port_programs_batch_too() {
        // Multi-port π schedules used to fall through to the scalar
        // remainder; the CycleN batch interpreter now covers them, so the
        // batch plan claims every fault and the verdicts still match the
        // scalar engine.
        let geom = Geometry::bom(4);
        let mut b = prt_ram::ProgramBuilder::new(geom);
        b.cycle2(
            prt_ram::SlotOp::ReadExpect { addr: 0, expect: 0 },
            prt_ram::SlotOp::Write { addr: 2, data: 1 },
        );
        b.cycle2(prt_ram::SlotOp::ReadExpect { addr: 2, expect: 1 }, prt_ram::SlotOp::Idle);
        let prog = b.build();
        let faults = [
            FaultKind::StuckAt { cell: 0, bit: 0, value: 1 },
            FaultKind::StuckAt { cell: 3, bit: 0, value: 1 },
        ];
        let c = Campaign::over(geom, &faults, &prog).with_ports(2);
        let plan = c.batch_plan().expect("dual-port programs batch now");
        assert_eq!(plan.len(), 1, "one background, one compiled program");
        assert_eq!(c.detections(), vec![true, false]);
        let scalar = Campaign::over(geom, &faults, &prog).with_ports(2).with_lane_batching(false);
        assert_eq!(scalar.detections(), vec![true, false]);
    }

    #[test]
    fn program_bank_dispatches_by_background() {
        use std::sync::atomic::AtomicUsize;
        let geom = Geometry::bom(6);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
        let bank = ProgramBank::new([(0u64, toy_program(geom))]);
        assert_eq!(bank.backgrounds(), vec![0]);
        assert!(bank.program(0).is_some() && bank.program(1).is_none());
        let report = Campaign::new(&u, &bank).with_name("bank").run();
        let verdict_count = AtomicUsize::new(0);
        let interpreted = Campaign::new(&u, |ram: &mut Ram, bg: u64| {
            verdict_count.fetch_add(1, Ordering::Relaxed);
            toy_runner(ram, bg)
        })
        .with_name("bank")
        .run();
        assert_eq!(report, interpreted);
        assert_eq!(verdict_count.load(Ordering::Relaxed), u.len());
    }

    #[test]
    #[should_panic(expected = "no program compiled for background")]
    fn program_bank_rejects_unknown_background() {
        let geom = Geometry::bom(4);
        let bank = ProgramBank::new([(0u64, toy_program(geom))]);
        let mut ram = Ram::new(geom);
        let _ = (&bank).detect(&mut ram, 7);
    }

    #[test]
    #[should_panic(expected = "campaign geometry does not match")]
    fn compiled_runner_rejects_wrong_geometry() {
        let prog = toy_program(Geometry::bom(8));
        let mut ram = Ram::new(Geometry::bom(4));
        let _ = FaultRunner::detect(&&prog, &mut ram, 0);
    }

    #[test]
    #[should_panic(expected = "needs 2 ports")]
    fn compiled_runner_rejects_port_shortfall() {
        let geom = Geometry::bom(4);
        let mut b = prt_ram::ProgramBuilder::new(geom).with_name("dual");
        b.cycle2(prt_ram::SlotOp::ReadExpect { addr: 0, expect: 0 }, prt_ram::SlotOp::Idle);
        let prog = b.build();
        let mut ram = Ram::new(geom);
        let _ = FaultRunner::detect(&&prog, &mut ram, 0);
    }

    #[test]
    #[should_panic(expected = "does not match the background")]
    fn compiled_runner_rejects_background_mismatch() {
        let geom = Geometry::bom(4);
        let mut b = prt_ram::ProgramBuilder::new(geom).with_background(0);
        b.read_expect(0, 0);
        let prog = b.build();
        let mut ram = Ram::new(geom);
        let _ = FaultRunner::detect(&&prog, &mut ram, 1);
    }

    #[test]
    fn empty_campaign() {
        let faults: Vec<FaultKind> = Vec::new();
        let c = Campaign::over(Geometry::bom(4), &faults, toy_runner);
        assert!(c.is_empty());
        assert!(c.detections().is_empty());
        assert_eq!(c.first_escape(), None);
        assert!(c.run().complete());
    }

    // ---- resilience -----------------------------------------------------

    use std::sync::Arc;

    /// A fresh checkpoint path in the system temp dir (removed upfront so
    /// every test starts cold).
    fn temp_ckpt(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prt-sim-unit-{}-{name}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn wrong_geometry_program_is_a_typed_error() {
        // The same misconfiguration that panics the legacy wrapper is a
        // typed CampaignError on the fallible path — caught *before* any
        // worker spawns.
        let u = FaultUniverse::enumerate(Geometry::bom(4), &UniverseSpec::single_cell());
        let prog = toy_program(Geometry::bom(8));
        let err = Campaign::new(&u, &prog).try_detections().unwrap_err();
        assert!(
            matches!(err, CampaignError::GeometryMismatch { .. }),
            "expected GeometryMismatch, got {err:?}"
        );
        assert!(err.to_string().contains("campaign geometry does not match"));
    }

    #[test]
    fn unknown_background_is_a_typed_error() {
        let geom = Geometry::bom(4);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
        let bank = ProgramBank::new([(0u64, toy_program(geom))]);
        let err = Campaign::new(&u, &bank).with_backgrounds(&[0, 7]).try_run().unwrap_err();
        assert_eq!(err, CampaignError::UnknownBackground { background: 7 });
    }

    #[test]
    fn cancelled_before_start_yields_empty_partial_report() {
        let u = universe();
        let token = CancelToken::new();
        token.cancel();
        let report = Campaign::new(&u, toy_runner).with_cancel(&token).try_run().expect("partial");
        let partial = report.partial().expect("must be marked partial");
        assert_eq!(partial.cause, StopCause::Cancelled);
        assert_eq!(partial.evaluated, 0);
        assert_eq!(partial.total, u.len());
        assert!(!report.complete());
        assert!(report.rows().is_empty());
        // The verdict-vector driver cannot return a partial vector: typed
        // error instead.
        let err = Campaign::new(&u, toy_runner).with_cancel(&token).try_detections().unwrap_err();
        assert_eq!(err, CampaignError::Cancelled { completed: 0, total: u.len() });
    }

    #[test]
    fn zero_deadline_yields_partial_report() {
        let u = universe();
        let report =
            Campaign::new(&u, toy_runner).with_deadline(Duration::ZERO).try_run().expect("partial");
        let partial = report.partial().expect("must be marked partial");
        assert_eq!(partial.cause, StopCause::DeadlineExceeded);
        assert_eq!(partial.evaluated, 0);
        match Campaign::new(&u, toy_runner).with_deadline(Duration::ZERO).try_detections() {
            Err(CampaignError::DeadlineExceeded { completed: 0, .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        };
    }

    #[test]
    fn killed_scalar_campaign_resumes_bit_identically() {
        // The acceptance scenario: a worker dies mid-run, the run errors
        // with WorkerPanic after checkpointing its progress, and a resumed
        // campaign — at any thread count — produces a report bit-identical
        // to an uninterrupted run.
        let u = universe();
        let uninterrupted = Campaign::new(&u, toy_runner).with_name("toy").run();
        let kill_at = u.len() / 2;
        for (round, threads) in [1usize, 3, 7].into_iter().enumerate() {
            let path = temp_ckpt(&format!("kill-resume-{round}"));
            let plan = Arc::new(chaos::ChaosPlan::new().panic_on_trial(kill_at));
            let err = Campaign::new(&u, toy_runner)
                .with_name("toy")
                .with_parallelism(Parallelism::Threads(threads))
                .with_checkpoint(&path, 16)
                .with_chaos(plan)
                .try_run()
                .unwrap_err();
            match &err {
                CampaignError::WorkerPanic { payload, .. } => {
                    assert!(payload.contains("chaos: injected panic"), "payload: {payload}")
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
            // The checkpoint captured a strict prefix of the universe.
            let fp = checkpoint::peek_fingerprint(&path).expect("checkpoint exists");
            let saved = checkpoint::load_records::<bool>(&path, fp, u.len())
                .expect("valid checkpoint")
                .expect("not cold");
            assert!(saved.len() < u.len(), "kill must leave an incomplete checkpoint");
            // Resume with a different thread count than the killed run.
            let resumed = Campaign::new(&u, toy_runner)
                .with_name("toy")
                .with_parallelism(Parallelism::Threads(threads + 1))
                .with_checkpoint(&path, 16)
                .run();
            assert_eq!(uninterrupted, resumed, "threads={threads}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn panicking_batch_degrades_to_scalar_oracle() {
        // A lane batch that dies must not kill the campaign: its faults
        // retry on the scalar oracle, verdicts stay exact, and the report
        // carries a degradation counter instead of an error.
        let u = universe();
        let prog = toy_program(u.geometry());
        let clean = Campaign::new(&u, &prog).with_name("toy").run();
        assert_eq!(clean.degraded_batches(), 0);
        // Every fault lane-batches, so the first universe index anchors
        // the first batch.
        let plan = Arc::new(chaos::ChaosPlan::new().panic_on_batch(0));
        let degraded = Campaign::new(&u, &prog).with_name("toy").with_chaos(plan).run();
        assert!(degraded.degraded_batches() >= 1, "batch kill must be counted");
        assert!(degraded.partial().is_none(), "degradation is not a partial run");
        assert_eq!(clean.rows(), degraded.rows(), "degraded verdicts must stay exact");
    }

    #[test]
    fn chaos_cancellation_stops_mid_campaign() {
        let u = universe();
        let token = CancelToken::new();
        let plan = Arc::new(chaos::ChaosPlan::new().cancel_after(u.len() / 2, &token));
        let report = Campaign::new(&u, toy_runner)
            .with_parallelism(Parallelism::Sequential)
            .with_cancel(&token)
            .with_chaos(plan)
            .try_run()
            .expect("partial");
        let partial = report.partial().expect("must be marked partial");
        assert_eq!(partial.cause, StopCause::Cancelled);
        assert!(partial.evaluated < u.len());
    }

    #[test]
    fn foreign_checkpoint_is_refused() {
        let u = universe();
        let path = temp_ckpt("foreign");
        // A completed campaign keeps its checkpoint file (cursor == total).
        let first = Campaign::new(&u, toy_runner).with_checkpoint(&path, 32).run();
        assert!(first.partial().is_none(), "uninterrupted run must not be partial");
        // A campaign with different backgrounds has a different verdict
        // table: adopting the old file silently would be corruption.
        let err = Campaign::new(&u, toy_runner)
            .with_backgrounds(&[0, 1])
            .with_checkpoint(&path, 32)
            .try_run()
            .unwrap_err();
        assert!(
            matches!(err, CampaignError::Checkpoint(CheckpointError::FingerprintMismatch { .. })),
            "expected FingerprintMismatch, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_refuses_resume_under_different_topology() {
        let u = universe();
        let n = u.geometry().cells();
        let scramble = Topology::identity(n).then_table((0..n).rev().collect()).unwrap();
        let path = temp_ckpt("topology");
        let first = Campaign::new(&u, toy_runner)
            .with_topology(scramble.clone())
            .with_checkpoint(&path, 32)
            .run();
        assert!(first.partial().is_none());
        // Same faults, same geometry — but the file declares a scramble,
        // so an identity-topology campaign must not adopt it...
        let err = Campaign::new(&u, toy_runner).with_checkpoint(&path, 32).try_run().unwrap_err();
        assert!(
            matches!(err, CampaignError::Checkpoint(CheckpointError::FingerprintMismatch { .. })),
            "identity resume of a scrambled checkpoint must be refused, got {err:?}"
        );
        // ...nor may a campaign under a *different* scramble.
        let other = Topology::generate(n, 7);
        assert_ne!(other, scramble, "seed 7 must generate a distinct topology");
        let err = Campaign::new(&u, toy_runner)
            .with_topology(other)
            .with_checkpoint(&path, 32)
            .try_run()
            .unwrap_err();
        assert!(
            matches!(err, CampaignError::Checkpoint(CheckpointError::FingerprintMismatch { .. })),
            "cross-scramble resume must be refused, got {err:?}"
        );
        // The declared topology re-admits its own checkpoint.
        let again = Campaign::new(&u, toy_runner)
            .with_topology(scramble)
            .with_checkpoint(&path, 32)
            .try_run()
            .expect("same-topology resume must succeed");
        assert_eq!(first.rows(), again.rows());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_segments_tile_and_match_detections() {
        // The streaming sink must see in-order, gap-free segments whose
        // concatenated verdicts equal the terminal verdict table — on
        // both engines — and hooking must not perturb the report.
        let u = universe();
        let prog = toy_program(u.geometry());
        for batching in [true, false] {
            let oracle = Campaign::new(&u, &prog).with_lane_batching(batching).detections();
            let seen: Mutex<Vec<(usize, usize, Vec<bool>)>> = Mutex::new(Vec::new());
            let report = Campaign::new(&u, &prog)
                .with_lane_batching(batching)
                .with_progress(7, |seg: SegmentProgress<'_>| {
                    seen.lock().unwrap().push((seg.start, seg.end, seg.verdicts.to_vec()));
                })
                .run();
            assert!(report.partial().is_none());
            let seen = seen.into_inner().unwrap();
            let mut cursor = 0;
            let mut streamed = Vec::new();
            for (start, end, verdicts) in &seen {
                assert_eq!(*start, cursor, "segments must tile without gaps");
                assert!(end > start && end - start <= 7, "segment cadence respected");
                assert_eq!(verdicts.len(), end - start);
                streamed.extend_from_slice(verdicts);
                cursor = *end;
            }
            assert_eq!(cursor, u.len(), "segments must cover the whole universe");
            assert_eq!(streamed, oracle, "streamed verdicts must equal the verdict table");
        }
    }

    #[test]
    fn resumed_progress_reports_restored_prefix() {
        // A hooked campaign resuming from a checkpoint announces the
        // restored prefix as one leading segment: sinks always see a
        // tiling of [0, total), even across a restart.
        let u = universe();
        let path = temp_ckpt("progress-resume");
        let token = CancelToken::new();
        let plan = Arc::new(chaos::ChaosPlan::new().cancel_after(u.len() / 2, &token));
        let _ = Campaign::new(&u, toy_runner)
            .with_parallelism(Parallelism::Sequential)
            .with_cancel(&token)
            .with_checkpoint(&path, 8)
            .with_chaos(plan)
            .try_run()
            .expect("partial run");
        let segments: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        let resumed = Campaign::new(&u, toy_runner)
            .with_checkpoint(&path, 8)
            .with_progress(8, |seg: SegmentProgress<'_>| {
                segments.lock().unwrap().push((seg.start, seg.end));
            })
            .run();
        assert!(resumed.partial().is_none());
        let segments = segments.into_inner().unwrap();
        assert!(segments[0].0 == 0 && segments[0].1 > 0, "restored prefix must be announced");
        let mut cursor = 0;
        for (start, end) in &segments {
            assert_eq!(*start, cursor);
            cursor = *end;
        }
        assert_eq!(cursor, u.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        // Segmenting the universe for checkpoints must not change the
        // verdicts — scalar and lane-batched engines alike.
        let u = universe();
        let prog = toy_program(u.geometry());
        let plain = Campaign::new(&u, &prog).with_name("toy").run();
        let path = temp_ckpt("segmented");
        let segmented = Campaign::new(&u, &prog).with_name("toy").with_checkpoint(&path, 10).run();
        assert_eq!(plain, segmented);
        let _ = std::fs::remove_file(&path);
    }
}
