//! Parallel, allocation-free fault-simulation campaign engine.
//!
//! Every coverage experiment in this workspace — the E3/E10 tables, scheme
//! synthesis, Monte-Carlo detection probability, the hardware/software
//! cross-check — reduces to the same inner loop: *for each enumerated fault
//! instance, prepare a RAM, inject, run a test, aggregate*. This crate
//! hoists that loop out of the five places it used to be written and makes
//! it fast:
//!
//! * **Pooled devices** — each worker keeps one [`Ram`] and recycles it via
//!   [`Ram::reset_to`] + [`Ram::eject_faults`], so the steady-state
//!   campaign performs **zero heap allocation per fault** instead of two
//!   `Vec` allocations plus fault-bank rebuilds per trial.
//! * **Parallel fan-out** — fault instances are independent, so workers
//!   self-schedule over chunks of the instance index space (chunked
//!   work-stealing on `std::thread::scope`; the environment this workspace
//!   builds in has no registry access, so the fan-out is built on `std`
//!   instead of rayon — the scheduling discipline is the same).
//! * **Early exit** — a fault detected under one data background skips the
//!   remaining backgrounds, exactly like the sequential reference.
//! * **Deterministic aggregation** — workers only fill a per-fault verdict
//!   table; rows are tallied afterwards in enumeration order, so the
//!   resulting [`CoverageReport`] is identical to the sequential path for
//!   any thread count.
//!
//! # Quick start
//!
//! Run a custom checker (anything implementing [`FaultRunner`], including
//! plain closures) over an enumerated fault universe:
//!
//! ```
//! use prt_ram::{FaultUniverse, Geometry, Ram, UniverseSpec};
//! use prt_sim::Campaign;
//!
//! let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
//! // A toy test: write/readback both polarities on every cell.
//! let report = Campaign::new(&universe, |ram: &mut Ram, _bg: u64| {
//!     let n = ram.geometry().cells();
//!     (0..n).any(|a| {
//!         ram.write(a, 0);
//!         let zero_ok = ram.read(a) == 0;
//!         ram.write(a, 1);
//!         !zero_ok || ram.read(a) != 1
//!     })
//! })
//! .with_name("write-readback")
//! .run();
//! assert!(report.class("SAF").unwrap().complete());
//! assert!(!report.class("TF").unwrap().complete()); // down-TFs escape
//! ```
//!
//! The higher layers provide ready-made runners: `prt-march` adapts March
//! tests (`MarchRunner`), `prt-core` implements [`FaultRunner`] for
//! `PiTest`, `PrtScheme`, `BitPlanePi` and `PlaneScheme` directly.
//!
//! The fastest path is a **pre-compiled program**: every test family
//! compiles to the [`prt_ram::prog`] IR (`Executor::compile`,
//! `PiTest::compile`, `PrtScheme::compile`, `PlaneScheme::compile`), and
//! `&TestProgram` / [`ProgramBank`] implement [`FaultRunner`], so the
//! per-trial notation-interpretation tax is paid once per campaign instead
//! of once per fault.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use prt_ram::{
    is_lane_batchable, FaultKind, FaultUniverse, Geometry, LaneRam, Ram, TestProgram, LANES,
};

mod report;

pub use report::{ClassTally, CoverageReport, CoverageRow};

/// Below this many trials a campaign stays sequential under
/// [`Parallelism::Auto`] — thread spawn/join costs more than the work.
const AUTO_PARALLEL_THRESHOLD: usize = 512;

/// Work-stealing chunk size bounds: small enough to balance ragged trial
/// costs (early-exit makes detected faults much cheaper than escapes),
/// large enough to amortise the shared-counter traffic.
const MAX_CHUNK: usize = 64;

/// How a campaign distributes its trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker on the calling thread (the sequential reference).
    Sequential,
    /// One worker per available core when the campaign is large enough to
    /// amortise thread startup; sequential otherwise.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to ≥ 1).
    Threads(usize),
}

impl Parallelism {
    fn workers(self, trials: usize) -> usize {
        let w = match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                if trials < AUTO_PARALLEL_THRESHOLD {
                    1
                } else {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                }
            }
        };
        w.min(trials.max(1))
    }
}

/// Something that can run one prepared, single-fault memory and report
/// whether the fault was detected.
///
/// The campaign hands the runner a pooled [`Ram`] that has already been
/// reset and injected; `background` is the data background for this trial
/// (test engines that have no background notion are free to ignore it).
/// Closures `Fn(&mut Ram, u64) -> bool + Sync` implement this directly.
pub trait FaultRunner: Sync {
    /// Runs the test; `true` means the fault was detected.
    fn detect(&self, ram: &mut Ram, background: u64) -> bool;

    /// The compiled program this runner would execute for `background`,
    /// if it can expose one — the hook the **lane-batched** campaign path
    /// dispatches through ([`Campaign::detections`] packs 64 batchable
    /// fault trials per interpreter pass when every background resolves
    /// to a single-port program). Runners without a compiled program
    /// (closures, notation-interpreting adapters) keep the default `None`
    /// and campaigns fall back to the scalar path.
    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        let _ = background;
        None
    }
}

impl<F> FaultRunner for F
where
    F: Fn(&mut Ram, u64) -> bool + Sync,
{
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        self(ram, background)
    }
}

// NOTE: no blanket `impl FaultRunner for &R` — it would overlap with the
// closure impl above. Engine-aware types implement the trait on their
// reference type instead (`impl FaultRunner for &PrtScheme`, …), so
// campaigns can borrow the runner.

/// A pre-compiled program drives campaigns directly: compilation happened
/// once, so every trial is a pure interpreter pass (allocation-free, early
/// exit at the first failing read). The trial background is ignored — a
/// compiled program bakes its data background in; use [`ProgramBank`] for
/// multi-background campaigns.
///
/// # Panics
///
/// Panics when the campaign's configuration contradicts the program:
/// wrong geometry, too few pooled ports, or a trial background that
/// differs from the one the program declares (March compilers declare
/// theirs). Per-trial device errors count as escapes, but any of these
/// mismatches would turn the *whole* campaign into silently wrong
/// coverage — configuration errors are surfaced loudly instead.
impl FaultRunner for &TestProgram {
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        detect_checked(self, ram, background)
    }

    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        match self.background() {
            // A baked-in background that differs from the trial's is a
            // configuration error — decline the batch path so the scalar
            // path surfaces it with its usual loud panic.
            Some(baked) if baked != background => None,
            _ => Some(self),
        }
    }
}

/// Campaign-side program dispatch: reject whole-campaign configuration
/// errors loudly, then run with the usual per-trial error-as-escape
/// semantics.
fn detect_checked(program: &TestProgram, ram: &mut Ram, background: u64) -> bool {
    assert_eq!(
        ram.geometry(),
        program.geometry(),
        "campaign geometry does not match the geometry '{}' was compiled for",
        program.name()
    );
    assert!(
        ram.ports() >= program.ports(),
        "'{}' needs {} ports but the campaign pools {}-port memories — add .with_ports({})",
        program.name(),
        program.ports(),
        ram.ports(),
        program.ports()
    );
    if let Some(baked) = program.background() {
        assert_eq!(
            baked,
            background,
            "trial background {background:#x} does not match the background '{}' was \
             compiled for — compile one program per background (ProgramBank)",
            program.name()
        );
    }
    program.detect(ram)
}

/// A set of compiled programs keyed by data background — the compiled
/// counterpart of running one test under
/// [`Campaign::with_backgrounds`]: the campaign hands each trial's
/// background to the bank, which dispatches to the program compiled for
/// it.
///
/// # Example
///
/// ```
/// use prt_ram::{Geometry, ProgramBuilder, FaultUniverse, UniverseSpec};
/// use prt_sim::{Campaign, ProgramBank};
///
/// let geom = Geometry::wom(4, 4)?;
/// let bank = ProgramBank::new([0u64, 0b1111].map(|bg| {
///     let mut b = ProgramBuilder::new(geom);
///     for a in 0..4 {
///         b.write(a, bg);
///         b.read_expect(a, bg);
///     }
///     (bg, b.build())
/// }));
/// let u = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
/// let report = Campaign::new(&u, &bank).with_backgrounds(&[0, 0b1111]).run();
/// assert!(report.class("SAF").unwrap().complete());
/// # Ok::<(), prt_ram::RamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBank {
    programs: Vec<(u64, TestProgram)>,
}

impl ProgramBank {
    /// Builds a bank from `(background, program)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on an empty collection.
    pub fn new(programs: impl IntoIterator<Item = (u64, TestProgram)>) -> ProgramBank {
        let programs: Vec<(u64, TestProgram)> = programs.into_iter().collect();
        assert!(!programs.is_empty(), "program bank needs at least one program");
        ProgramBank { programs }
    }

    /// A bank holding a single program (background 0).
    pub fn single(program: TestProgram) -> ProgramBank {
        ProgramBank { programs: vec![(0, program)] }
    }

    /// The backgrounds this bank was compiled for, in insertion order —
    /// pass these to [`Campaign::with_backgrounds`].
    pub fn backgrounds(&self) -> Vec<u64> {
        self.programs.iter().map(|&(bg, _)| bg).collect()
    }

    /// The program compiled for `background` (`None` if absent).
    pub fn program(&self, background: u64) -> Option<&TestProgram> {
        self.programs.iter().find(|&&(bg, _)| bg == background).map(|(_, p)| p)
    }
}

/// Campaigns dispatch each trial's background to the matching compiled
/// program.
///
/// # Panics
///
/// Panics when a trial asks for a background the bank was not compiled
/// for, or when the campaign's geometry differs from the programs' — both
/// campaign/bank configuration mismatches.
impl FaultRunner for &ProgramBank {
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        let program = self
            .program(background)
            .unwrap_or_else(|| panic!("no program compiled for background {background:#x}"));
        detect_checked(program, ram, background)
    }

    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        self.program(background)
    }
}

/// Runs `count` independent trials against pooled memories and collects the
/// per-trial verdicts in trial order.
///
/// This is the boolean specialisation of [`map_trials`] — see there for
/// the pooling and scheduling contract.
///
/// # Panics
///
/// Panics if `ports` is not a valid port count for [`Ram::with_ports`].
pub fn run_trials<F>(
    geom: Geometry,
    ports: usize,
    count: usize,
    parallelism: Parallelism,
    trial: F,
) -> Vec<bool>
where
    F: Fn(usize, &mut Ram) -> bool + Sync,
{
    map_trials(geom, ports, count, parallelism, trial)
}

/// Runs `count` independent trials against pooled memories and collects
/// each trial's **result value** in trial order — the generic campaign
/// mode that per-fault *measurements* (MISR signatures for fault
/// dictionaries, observed response streams, per-trial statistics) build
/// on, where [`run_trials`] only records a verdict bit. See
/// [`map_trials_batched`] for the lane-sliced form measurement campaigns
/// over an explicit fault list use.
///
/// This is the engine's lowest-level primitive (Monte-Carlo campaigns use
/// it directly; [`Campaign`] builds fault-universe sweeps on top). Each
/// worker owns one `Ram`; before every trial the device is healed
/// ([`Ram::eject_faults`]) and zero-reset ([`Ram::reset_to`]), so `trial`
/// always observes a pristine memory and the steady state allocates
/// nothing beyond what `trial` itself allocates. Results land in
/// write-once slots in trial order, so the output is deterministic and
/// independent of the parallelism policy.
///
/// # Panics
///
/// Panics if `ports` is not a valid port count for [`Ram::with_ports`].
pub fn map_trials<T, F>(
    geom: Geometry,
    ports: usize,
    count: usize,
    parallelism: Parallelism,
    trial: F,
) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, &mut Ram) -> T + Sync,
{
    let workers = parallelism.workers(count);
    if workers <= 1 {
        let mut ram = Ram::with_ports(geom, ports).expect("valid port count");
        return (0..count)
            .map(|i| {
                ram.eject_faults();
                ram.reset_to(0);
                trial(i, &mut ram)
            })
            .collect();
    }
    let results: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let chunk = (count / (workers * 8)).clamp(1, MAX_CHUNK);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut ram = Ram::with_ports(geom, ports).expect("valid port count");
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    for (i, slot) in
                        results.iter().enumerate().take((start + chunk).min(count)).skip(start)
                    {
                        ram.eject_faults();
                        ram.reset_to(0);
                        // Chunks never overlap, so each slot is set once.
                        let _ = slot.set(trial(i, &mut ram));
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every trial index was dispatched"))
        .collect()
}

/// The lane-sliced form of [`map_trials`] for per-fault measurement
/// campaigns: batchable faults are packed [`LANES`] per [`LaneRam`] and
/// measured by one `batch_trial` pass per batch; any scalar-only
/// remainder (future [`is_lane_batchable`] opt-outs) runs through
/// `scalar_trial` on pooled [`Ram`]s. Results land by **fault index**, so
/// the output is deterministic and identical for any parallelism policy —
/// and, when the two trial functions measure the same thing (the contract
/// callers are property-tested against), identical to the all-scalar
/// [`map_trials`] sweep.
///
/// `batch_trial` receives a healed, zero-reset [`LaneRam`] whose lanes
/// `0..k` carry the batch's faults in index order and must push exactly
/// one result per injected lane, in lane order (checked). `scalar_trial`
/// receives the fault's universe index and a pooled memory with the fault
/// **already injected** (unlike the raw [`map_trials`], which hands the
/// closure a pristine device).
///
/// Callers remain responsible for only routing measurements that *can*
/// batch — e.g. `prt-diag` dictionary builds fall back to [`map_trials`]
/// entirely when the diagnostic program is multi-port.
///
/// # Panics
///
/// Panics if `ports` is invalid, a fault fails to inject, or
/// `batch_trial` yields a wrong result count.
pub fn map_trials_batched<T, FB, FS>(
    geom: Geometry,
    ports: usize,
    faults: &[FaultKind],
    parallelism: Parallelism,
    batch_trial: FB,
    scalar_trial: FS,
) -> Vec<T>
where
    T: Send + Sync,
    FB: Fn(&mut LaneRam, &mut Vec<T>) + Sync,
    FS: Fn(usize, &mut Ram) -> T + Sync,
{
    let mut batched: Vec<usize> = Vec::new();
    let mut rest: Vec<usize> = Vec::new();
    for (i, fault) in faults.iter().enumerate() {
        if is_lane_batchable(fault) {
            batched.push(i);
        } else {
            rest.push(i);
        }
    }
    let n_batches = batched.len().div_ceil(LANES);
    let results: Vec<OnceLock<T>> = (0..faults.len()).map(|_| OnceLock::new()).collect();
    let run_batch = |b: usize, ram: &mut LaneRam, out: &mut Vec<T>| {
        ram.eject_faults();
        ram.reset_to(0);
        let lanes = &batched[b * LANES..((b + 1) * LANES).min(batched.len())];
        for (lane, &fi) in lanes.iter().enumerate() {
            ram.inject(faults[fi].clone(), lane).expect("campaign faults are valid");
        }
        out.clear();
        batch_trial(ram, out);
        assert_eq!(out.len(), lanes.len(), "batch trial must yield one result per injected lane");
        for (&fi, v) in lanes.iter().zip(out.drain(..)) {
            // Batch indices are claimed uniquely, so each slot is set once.
            let _ = results[fi].set(v);
        }
    };
    let workers = parallelism.workers(batched.len()).min(n_batches.max(1));
    if workers <= 1 {
        let mut ram = LaneRam::new(geom);
        let mut out = Vec::new();
        for b in 0..n_batches {
            run_batch(b, &mut ram, &mut out);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ram = LaneRam::new(geom);
                    let mut out = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_batches {
                            break;
                        }
                        run_batch(b, &mut ram, &mut out);
                    }
                });
            }
        });
    }
    if !rest.is_empty() {
        let rest_vals = map_trials(geom, ports, rest.len(), parallelism, |k, ram| {
            ram.inject(faults[rest[k]].clone()).expect("campaign faults are valid");
            scalar_trial(rest[k], ram)
        });
        for (&fi, v) in rest.iter().zip(rest_vals) {
            let _ = results[fi].set(v);
        }
    }
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every fault index was dispatched"))
        .collect()
}

/// A configured fault-simulation campaign: a fault set × a runner × data
/// backgrounds, with a parallelism policy.
///
/// Construction is cheap; nothing runs until [`Campaign::run`],
/// [`Campaign::detections`] or one of the other drivers is called.
#[derive(Debug)]
pub struct Campaign<'a, R> {
    geom: Geometry,
    faults: &'a [FaultKind],
    runner: R,
    backgrounds: Vec<u64>,
    ports: usize,
    parallelism: Parallelism,
    lane_batching: bool,
    name: String,
}

impl<'a, R: FaultRunner> Campaign<'a, R> {
    /// A campaign over every instance of an enumerated universe.
    pub fn new(universe: &'a FaultUniverse, runner: R) -> Campaign<'a, R> {
        Campaign::over(universe.geometry(), universe.faults(), runner)
    }

    /// A campaign over an explicit fault list (e.g. the escapes of a
    /// previous campaign, or a topological NPSF set).
    pub fn over(geom: Geometry, faults: &'a [FaultKind], runner: R) -> Campaign<'a, R> {
        Campaign {
            geom,
            faults,
            runner,
            backgrounds: vec![0],
            ports: 1,
            parallelism: Parallelism::Auto,
            lane_batching: true,
            name: "campaign".to_string(),
        }
    }

    /// Sets the data backgrounds; a fault counts as detected when **any**
    /// background run flags it, and later backgrounds are skipped once one
    /// does (the per-fault early exit).
    ///
    /// # Panics
    ///
    /// Panics on an empty background list.
    pub fn with_backgrounds(mut self, backgrounds: &[u64]) -> Campaign<'a, R> {
        assert!(!backgrounds.is_empty(), "at least one data background required");
        self.backgrounds = backgrounds.to_vec();
        self
    }

    /// Number of ports on the pooled memories (default 1).
    pub fn with_ports(mut self, ports: usize) -> Campaign<'a, R> {
        self.ports = ports;
        self
    }

    /// Sets the parallelism policy (default [`Parallelism::Auto`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Campaign<'a, R> {
        self.parallelism = parallelism;
        self
    }

    /// Enables or disables the lane-sliced batch path (default enabled).
    /// With batching on, a campaign whose runner exposes a single-port
    /// compiled program for every background
    /// ([`FaultRunner::batch_program`]) evaluates its universe in
    /// lanes-of-64, up to 64 trials per interpreter pass — the partition
    /// predicate has shrunk to "multi-port program only", since every
    /// modelled fault family now batches; verdicts are bit-identical to
    /// the scalar path either way. Disable to measure or
    /// differential-test the scalar engine.
    pub fn with_lane_batching(mut self, enabled: bool) -> Campaign<'a, R> {
        self.lane_batching = enabled;
        self
    }

    /// Sets the report name (default `"campaign"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Campaign<'a, R> {
        self.name = name.into();
        self
    }

    /// Number of fault instances in the campaign.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the campaign has no fault instances.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn run_fault(&self, i: usize, ram: &mut Ram) -> bool {
        ram.inject(self.faults[i].clone()).expect("campaign faults are valid");
        for (bi, &bg) in self.backgrounds.iter().enumerate() {
            if bi > 0 {
                ram.reset_to(0);
            }
            if self.runner.detect(ram, bg) {
                return true;
            }
        }
        false
    }

    /// Per-fault verdicts in enumeration order. Deterministic: the result
    /// is independent of the parallelism policy because every trial is
    /// isolated on its own (pooled) memory — and of the lane-batching
    /// policy, because the batch engine is bitwise-exact per lane
    /// (property-tested in `tests/batch.rs`).
    pub fn detections(&self) -> Vec<bool> {
        match self.batch_plan() {
            Some(programs) => self.detections_lane_batched(&programs),
            None => self.detections_scalar(),
        }
    }

    /// The scalar engine: one interpreter pass per (fault, background)
    /// trial on pooled memories — the reference the batch path is
    /// differential-tested against.
    fn detections_scalar(&self) -> Vec<bool> {
        run_trials(self.geom, self.ports, self.faults.len(), self.parallelism, |i, ram| {
            self.run_fault(i, ram)
        })
    }

    /// The compiled programs (one per background) to batch with, when the
    /// campaign is eligible: batching enabled, every background resolves
    /// to a program, and every program is single-port on this geometry.
    fn batch_plan(&self) -> Option<Vec<&TestProgram>> {
        if !self.lane_batching {
            return None;
        }
        let programs: Vec<&TestProgram> = self
            .backgrounds
            .iter()
            .map(|&bg| self.runner.batch_program(bg))
            .collect::<Option<_>>()?;
        // Geometry mismatches fall through to the scalar path, which
        // surfaces them with its usual loud panic.
        programs.iter().all(|p| p.lane_batchable() && p.geometry() == self.geom).then_some(programs)
    }

    /// The lane-batched engine: batchable faults — since the decoder
    /// model, sense planes and read/write-logic masks landed, **every**
    /// modelled family — are packed 64 per [`LaneRam`], workers
    /// self-schedule over whole batches, and the verdict table is filled
    /// by fault index, so the result is identical to
    /// [`Campaign::detections_scalar`] for any thread count. The scalar
    /// remainder path persists for future [`is_lane_batchable`] opt-outs.
    fn detections_lane_batched(&self, programs: &[&TestProgram]) -> Vec<bool> {
        let mut verdicts = vec![false; self.faults.len()];
        let mut batched: Vec<usize> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        for (i, fault) in self.faults.iter().enumerate() {
            if is_lane_batchable(fault) {
                batched.push(i);
            } else {
                rest.push(i);
            }
        }
        let n_batches = batched.len().div_ceil(LANES);
        let run_batch = |b: usize, ram: &mut LaneRam| -> u64 {
            ram.eject_faults();
            ram.reset_to(0);
            let lanes = &batched[b * LANES..((b + 1) * LANES).min(batched.len())];
            for (lane, &fi) in lanes.iter().enumerate() {
                ram.inject(self.faults[fi].clone(), lane).expect("campaign faults are valid");
            }
            let full = ram.active_lanes();
            let mut detected = 0u64;
            for (bi, program) in programs.iter().enumerate() {
                if bi > 0 {
                    // The per-fault early exit across backgrounds, lane
                    // style: stop once every lane has been flagged.
                    if detected == full {
                        break;
                    }
                    ram.reset_to(0);
                }
                detected |= program.detect_batch(ram);
            }
            detected
        };
        let scatter = |verdicts: &mut [bool], b: usize, detected: u64| {
            for (lane, &fi) in batched[b * LANES..].iter().take(LANES).enumerate() {
                verdicts[fi] = (detected >> lane) & 1 == 1;
            }
        };
        let workers = self.parallelism.workers(batched.len()).min(n_batches.max(1));
        if workers <= 1 {
            let mut ram = LaneRam::new(self.geom);
            for b in 0..n_batches {
                let detected = run_batch(b, &mut ram);
                scatter(&mut verdicts, b, detected);
            }
        } else {
            let results: Vec<OnceLock<u64>> = (0..n_batches).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut ram = LaneRam::new(self.geom);
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= n_batches {
                                break;
                            }
                            // Batch indices are claimed uniquely, so each
                            // slot is set once.
                            let _ = results[b].set(run_batch(b, &mut ram));
                        }
                    });
                }
            });
            for (b, slot) in results.into_iter().enumerate() {
                let detected = slot.into_inner().expect("every batch index was dispatched");
                scatter(&mut verdicts, b, detected);
            }
        }
        if !rest.is_empty() {
            let rest_verdicts =
                run_trials(self.geom, self.ports, rest.len(), self.parallelism, |k, ram| {
                    self.run_fault(rest[k], ram)
                });
            for (&fi, v) in rest.iter().zip(rest_verdicts) {
                verdicts[fi] = v;
            }
        }
        verdicts
    }

    /// The seed's original inner loop — a fresh [`Ram`] allocated per
    /// (fault, background) trial, strictly sequential. Kept as the
    /// differential-testing oracle and the benchmark baseline the pooled
    /// engine is measured against; produces bit-identical verdicts.
    pub fn detections_reference(&self) -> Vec<bool> {
        self.faults
            .iter()
            .map(|fault| {
                for &bg in &self.backgrounds {
                    let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
                    ram.inject(fault.clone()).expect("campaign faults are valid");
                    if self.runner.detect(&mut ram, bg) {
                        return true;
                    }
                }
                false
            })
            .collect()
    }

    /// Indices of the faults that escaped (were not detected).
    pub fn escapes(&self) -> Vec<usize> {
        self.detections().into_iter().enumerate().filter_map(|(i, d)| (!d).then_some(i)).collect()
    }

    /// Number of detected faults.
    pub fn count_detected(&self) -> usize {
        self.detections().into_iter().filter(|&d| d).count()
    }

    /// Index of the first escaping fault, or `None` when coverage is
    /// complete. Fail-fast: sequential campaigns stop at the first escape;
    /// parallel campaigns stop refining once no smaller index can escape.
    /// The result equals `self.escapes().first()` for any thread count.
    /// Always runs the scalar engine — the fail-fast scan visits a prefix
    /// of the universe, where batch packing would mostly evaluate trials
    /// whose verdicts are then discarded.
    pub fn first_escape(&self) -> Option<usize> {
        let count = self.faults.len();
        let workers = self.parallelism.workers(count);
        if workers <= 1 {
            let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
            return (0..count).find(|&i| {
                ram.eject_faults();
                ram.reset_to(0);
                !self.run_fault(i, &mut ram)
            });
        }
        let best = AtomicUsize::new(usize::MAX);
        let next = AtomicUsize::new(0);
        let chunk = (count / (workers * 8)).clamp(1, MAX_CHUNK);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ram = Ram::with_ports(self.geom, self.ports).expect("valid port count");
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= count || start >= best.load(Ordering::Relaxed) {
                            break;
                        }
                        for i in start..(start + chunk).min(count) {
                            // Indices past a known escape cannot improve the
                            // minimum; indices below it are all still visited,
                            // so the final value is the true first escape.
                            if i >= best.load(Ordering::Relaxed) {
                                break;
                            }
                            ram.eject_faults();
                            ram.reset_to(0);
                            if !self.run_fault(i, &mut ram) {
                                best.fetch_min(i, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
        });
        let found = best.into_inner();
        (found != usize::MAX).then_some(found)
    }

    /// Runs the campaign and aggregates per-class coverage. The report is
    /// byte-identical to the sequential reference path regardless of the
    /// parallelism policy: workers only fill the per-fault verdict table,
    /// and rows are tallied in enumeration order afterwards.
    pub fn run(&self) -> CoverageReport {
        let verdicts = self.detections();
        let mut tally = ClassTally::new();
        for (fault, detected) in self.faults.iter().zip(&verdicts) {
            tally.record(fault.mnemonic(), *detected);
        }
        tally.into_report(self.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::UniverseSpec;
    use std::sync::atomic::AtomicUsize;

    /// `w0 ⇑(r0) w1 ⇑(r1)`-ish toy test with full SAF coverage.
    fn toy_runner(ram: &mut Ram, _bg: u64) -> bool {
        let n = ram.geometry().cells();
        let mask = ram.geometry().data_mask();
        for a in 0..n {
            ram.write(a, 0);
        }
        for a in 0..n {
            if ram.read(a) != 0 {
                return true;
            }
            ram.write(a, mask);
        }
        (0..n).any(|a| {
            let got = ram.read(a) != mask;
            ram.write(a, 0);
            got
        })
    }

    fn universe() -> FaultUniverse {
        FaultUniverse::enumerate(Geometry::bom(10), &UniverseSpec::full())
    }

    #[test]
    fn parallel_matches_sequential_and_reference() {
        let u = universe();
        let seq =
            Campaign::new(&u, toy_runner).with_parallelism(Parallelism::Sequential).detections();
        let par =
            Campaign::new(&u, toy_runner).with_parallelism(Parallelism::Threads(4)).detections();
        let reference = Campaign::new(&u, toy_runner).detections_reference();
        assert_eq!(seq, par);
        assert_eq!(seq, reference);
    }

    #[test]
    fn reports_identical_across_thread_counts() {
        let u = universe();
        let base = Campaign::new(&u, toy_runner)
            .with_parallelism(Parallelism::Sequential)
            .with_name("toy")
            .run();
        for threads in [2usize, 3, 8] {
            let r = Campaign::new(&u, toy_runner)
                .with_parallelism(Parallelism::Threads(threads))
                .with_name("toy")
                .run();
            assert_eq!(base, r, "threads={threads}");
        }
        assert!(base.class("SAF").unwrap().complete());
    }

    #[test]
    fn multi_background_early_exit() {
        // SAF-only: the toy runner has full stuck-at coverage.
        let u = FaultUniverse::enumerate(
            Geometry::bom(6),
            &UniverseSpec { saf: true, ..UniverseSpec::default() },
        );
        let calls = AtomicUsize::new(0);
        let runner = |ram: &mut Ram, bg: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            // Only background 1 ever detects anything.
            bg == 1 && toy_runner(ram, bg)
        };
        let det = Campaign::new(&u, runner)
            .with_backgrounds(&[1, 0, 0, 0])
            .with_parallelism(Parallelism::Sequential)
            .detections();
        // Every stuck-at is caught on the first background, so exactly one
        // runner call per fault.
        assert!(det.iter().all(|&d| d));
        assert_eq!(calls.load(Ordering::Relaxed), u.len());
    }

    #[test]
    fn backgrounds_reset_state_between_runs() {
        let u = FaultUniverse::enumerate(Geometry::bom(4), &UniverseSpec::single_cell());
        // A runner that dirties the RAM and detects nothing: the second
        // background must still observe a pristine store.
        let runner = |ram: &mut Ram, bg: u64| {
            if bg == 0 {
                ram.write(0, 1);
                false
            } else {
                ram.read(0) == 1 // dirty state leaked from background 0
            }
        };
        let det = Campaign::new(&u, runner)
            .with_backgrounds(&[0, 1])
            .with_parallelism(Parallelism::Sequential)
            .detections();
        // Cell-0 faults can make the leak check misfire legitimately
        // (SA1@0 reads 1 even on a clean store); every other instance must
        // see a clean device on background 1.
        for (i, d) in det.iter().enumerate() {
            if !matches!(
                u.faults()[i],
                FaultKind::StuckAt { cell: 0, .. } | FaultKind::Transition { cell: 0, .. }
            ) {
                assert!(!d, "fault {i}: state leaked across backgrounds");
            }
        }
    }

    #[test]
    fn escapes_and_first_escape_agree() {
        let u = universe();
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let c = Campaign::new(&u, toy_runner).with_parallelism(parallelism);
            let escapes = c.escapes();
            assert_eq!(c.first_escape(), escapes.first().copied());
            assert_eq!(c.count_detected(), u.len() - escapes.len());
        }
    }

    #[test]
    fn complete_campaign_has_no_first_escape() {
        let u = FaultUniverse::enumerate(
            Geometry::bom(8),
            &UniverseSpec { saf: true, ..UniverseSpec::default() },
        );
        let c = Campaign::new(&u, toy_runner).with_parallelism(Parallelism::Threads(3));
        assert_eq!(c.first_escape(), None);
        assert!(c.run().complete());
    }

    #[test]
    fn over_subset_campaign() {
        let u = universe();
        let all = Campaign::new(&u, toy_runner);
        let escapes = all.escapes();
        let escaped: Vec<FaultKind> = escapes.iter().map(|&i| u.faults()[i].clone()).collect();
        let sub = Campaign::over(u.geometry(), &escaped, toy_runner);
        assert_eq!(sub.len(), escaped.len());
        assert!(!sub.is_empty());
        assert_eq!(sub.count_detected(), 0, "escapes must still escape");
    }

    #[test]
    fn map_trials_collects_values_in_order() {
        // The generic campaign mode: per-trial measurements, not just
        // verdict bits — deterministic for any thread count.
        let seq = map_trials(Geometry::bom(4), 1, 200, Parallelism::Sequential, |i, ram| {
            ram.write(0, (i % 2) as u64);
            ram.read(0) + 10 * i as u64
        });
        for threads in [2usize, 4, 7] {
            let par =
                map_trials(Geometry::bom(4), 1, 200, Parallelism::Threads(threads), |i, ram| {
                    ram.write(0, (i % 2) as u64);
                    ram.read(0) + 10 * i as u64
                });
            assert_eq!(seq, par, "threads={threads}");
        }
        for (i, v) in seq.iter().enumerate() {
            assert_eq!(*v, (i % 2) as u64 + 10 * i as u64, "trial {i}");
        }
    }

    #[test]
    fn map_trials_batched_matches_scalar_map() {
        // The lane-sliced measurement mode must produce, fault for fault,
        // the same values as an all-scalar map_trials sweep, for any
        // thread count — over the full universe (every family batches).
        let u = universe();
        let prog = toy_program(u.geometry());
        let scalar: Vec<bool> =
            map_trials(u.geometry(), 1, u.len(), Parallelism::Sequential, |i, ram| {
                ram.inject(u.faults()[i].clone()).expect("valid");
                prog.detect(ram)
            });
        for threads in [1usize, 3, 7] {
            let batched = map_trials_batched(
                u.geometry(),
                1,
                u.faults(),
                Parallelism::Threads(threads),
                |lanes: &mut LaneRam, out: &mut Vec<bool>| {
                    let verdicts = prog.detect_batch(lanes);
                    for lane in 0..lanes.active_lanes().count_ones() as usize {
                        out.push((verdicts >> lane) & 1 == 1);
                    }
                },
                |_, ram| prog.detect(ram),
            );
            assert_eq!(scalar, batched, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "one result per injected lane")]
    fn map_trials_batched_rejects_wrong_result_count() {
        let u = FaultUniverse::enumerate(Geometry::bom(4), &UniverseSpec::single_cell());
        let _ = map_trials_batched(
            u.geometry(),
            1,
            u.faults(),
            Parallelism::Sequential,
            |_lanes: &mut LaneRam, out: &mut Vec<bool>| out.push(true), // too few
            |_, _| true,
        );
    }

    #[test]
    fn run_trials_verdict_order() {
        let det =
            run_trials(Geometry::bom(4), 1, 100, Parallelism::Threads(4), |i, _ram| i % 3 == 0);
        for (i, d) in det.iter().enumerate() {
            assert_eq!(*d, i % 3 == 0, "trial {i}");
        }
    }

    /// The toy runner, compiled to the IR once for a given geometry.
    fn toy_program(geom: Geometry) -> TestProgram {
        let mut b = prt_ram::ProgramBuilder::new(geom).with_name("toy compiled");
        let n = geom.cells();
        let mask = geom.data_mask();
        for a in 0..n {
            b.write(a, 0);
        }
        for a in 0..n {
            b.read_expect(a, 0);
            b.write(a, mask);
        }
        for a in 0..n {
            b.read_expect(a, mask);
            b.write(a, 0);
        }
        b.build()
    }

    #[test]
    fn compiled_program_campaign_matches_interpreted() {
        let u = universe();
        let prog = toy_program(u.geometry());
        let interpreted = Campaign::new(&u, toy_runner).detections();
        let compiled = Campaign::new(&u, &prog).detections();
        assert_eq!(interpreted, compiled);
        for threads in [2usize, 5] {
            let par = Campaign::new(&u, &prog)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            assert_eq!(compiled, par, "threads={threads}");
        }
    }

    #[test]
    fn lane_batched_campaign_matches_scalar_engine() {
        // The full() universe mixes batchable (SAF/TF/CF…) and
        // scalar-only (AF/SOF/RDF…) families, so the partition and the
        // remainder path are both exercised. Verdicts must be identical
        // to the scalar engine for any thread count.
        let u = universe();
        let prog = toy_program(u.geometry());
        let scalar = Campaign::new(&u, &prog)
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        for parallelism in
            [Parallelism::Sequential, Parallelism::Threads(3), Parallelism::Threads(7)]
        {
            let batched = Campaign::new(&u, &prog).with_parallelism(parallelism).detections();
            assert_eq!(scalar, batched, "{parallelism:?}");
        }
        // The aggregated report is identical too.
        let a = Campaign::new(&u, &prog).with_name("toy").run();
        let b = Campaign::new(&u, &prog).with_name("toy").with_lane_batching(false).run();
        assert_eq!(a, b);
    }

    #[test]
    fn lane_batched_multi_background_matches_scalar() {
        let geom = Geometry::wom(6, 4).expect("geometry");
        let u = FaultUniverse::enumerate(
            geom,
            &UniverseSpec { intra_word: true, ..UniverseSpec::full() },
        );
        let bgs = [0u64, 0b0101];
        let bank = ProgramBank::new(bgs.map(|bg| {
            let mut b = prt_ram::ProgramBuilder::new(geom).with_background(bg);
            for a in 0..6 {
                b.write(a, bg);
            }
            for a in 0..6 {
                b.read_expect(a, bg);
                b.write(a, bg ^ 0xF);
            }
            for a in 0..6 {
                b.read_expect(a, bg ^ 0xF);
            }
            (bg, b.build())
        }));
        let scalar =
            Campaign::new(&u, &bank).with_backgrounds(&bgs).with_lane_batching(false).detections();
        for threads in [1usize, 4] {
            let batched = Campaign::new(&u, &bank)
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            assert_eq!(scalar, batched, "threads={threads}");
        }
    }

    #[test]
    fn interpreted_runners_have_no_batch_plan() {
        // A closure runner exposes no compiled program: the batch path
        // must decline and the scalar engine must serve the verdicts.
        let u = universe();
        let c = Campaign::new(&u, toy_runner);
        assert!(c.batch_plan().is_none());
        assert_eq!(c.detections(), c.detections_scalar());
    }

    #[test]
    fn multi_port_programs_stay_on_the_scalar_path() {
        let geom = Geometry::bom(4);
        let mut b = prt_ram::ProgramBuilder::new(geom);
        b.cycle2(prt_ram::SlotOp::ReadExpect { addr: 0, expect: 0 }, prt_ram::SlotOp::Idle);
        let prog = b.build();
        let faults = [FaultKind::StuckAt { cell: 0, bit: 0, value: 1 }];
        let c = Campaign::over(geom, &faults, &prog).with_ports(2);
        assert!(c.batch_plan().is_none(), "dual-port programs cannot batch");
        assert_eq!(c.detections(), vec![true]);
    }

    #[test]
    fn program_bank_dispatches_by_background() {
        use std::sync::atomic::AtomicUsize;
        let geom = Geometry::bom(6);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
        let bank = ProgramBank::new([(0u64, toy_program(geom))]);
        assert_eq!(bank.backgrounds(), vec![0]);
        assert!(bank.program(0).is_some() && bank.program(1).is_none());
        let report = Campaign::new(&u, &bank).with_name("bank").run();
        let verdict_count = AtomicUsize::new(0);
        let interpreted = Campaign::new(&u, |ram: &mut Ram, bg: u64| {
            verdict_count.fetch_add(1, Ordering::Relaxed);
            toy_runner(ram, bg)
        })
        .with_name("bank")
        .run();
        assert_eq!(report, interpreted);
        assert_eq!(verdict_count.load(Ordering::Relaxed), u.len());
    }

    #[test]
    #[should_panic(expected = "no program compiled for background")]
    fn program_bank_rejects_unknown_background() {
        let geom = Geometry::bom(4);
        let bank = ProgramBank::new([(0u64, toy_program(geom))]);
        let mut ram = Ram::new(geom);
        let _ = (&bank).detect(&mut ram, 7);
    }

    #[test]
    #[should_panic(expected = "campaign geometry does not match")]
    fn compiled_runner_rejects_wrong_geometry() {
        let prog = toy_program(Geometry::bom(8));
        let mut ram = Ram::new(Geometry::bom(4));
        let _ = FaultRunner::detect(&&prog, &mut ram, 0);
    }

    #[test]
    #[should_panic(expected = "needs 2 ports")]
    fn compiled_runner_rejects_port_shortfall() {
        let geom = Geometry::bom(4);
        let mut b = prt_ram::ProgramBuilder::new(geom).with_name("dual");
        b.cycle2(prt_ram::SlotOp::ReadExpect { addr: 0, expect: 0 }, prt_ram::SlotOp::Idle);
        let prog = b.build();
        let mut ram = Ram::new(geom);
        let _ = FaultRunner::detect(&&prog, &mut ram, 0);
    }

    #[test]
    #[should_panic(expected = "does not match the background")]
    fn compiled_runner_rejects_background_mismatch() {
        let geom = Geometry::bom(4);
        let mut b = prt_ram::ProgramBuilder::new(geom).with_background(0);
        b.read_expect(0, 0);
        let prog = b.build();
        let mut ram = Ram::new(geom);
        let _ = FaultRunner::detect(&&prog, &mut ram, 1);
    }

    #[test]
    fn empty_campaign() {
        let faults: Vec<FaultKind> = Vec::new();
        let c = Campaign::over(Geometry::bom(4), &faults, toy_runner);
        assert!(c.is_empty());
        assert!(c.detections().is_empty());
        assert_eq!(c.first_escape(), None);
        assert!(c.run().complete());
    }
}
