//! The campaign error taxonomy.
//!
//! PR 5 deliberately made whole-campaign misconfiguration panic loudly —
//! correct for batch binaries, fatal for a long-running service. The
//! fallible entry points ([`crate::Campaign::try_run`],
//! [`crate::try_map_trials`], …) surface every failure as a
//! [`CampaignError`] instead; the legacy panicking APIs are thin wrappers
//! that re-raise through [`CampaignError::raise`], whose messages contain
//! the exact phrases the old asserts used, so existing
//! `should_panic(expected = …)` regression tests keep passing unchanged.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use prt_ram::Geometry;

/// Errors produced by the campaign engine's fallible entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The campaign's pooled geometry differs from the one the runner's
    /// program was compiled for.
    GeometryMismatch {
        /// Name of the compiled program.
        program: String,
        /// Geometry the program was compiled for.
        compiled: Geometry,
        /// Geometry the campaign pools.
        campaign: Geometry,
    },
    /// The runner's program needs more ports than the campaign pools.
    PortShortfall {
        /// Name of the compiled program.
        program: String,
        /// Ports the program needs.
        needed: usize,
        /// Ports the campaign pools.
        pooled: usize,
    },
    /// A trial background differs from the one the program bakes in.
    BackgroundMismatch {
        /// Name of the compiled program.
        program: String,
        /// Background the program was compiled for.
        compiled: u64,
        /// Background the campaign asked for.
        requested: u64,
    },
    /// A trial background no program was compiled for
    /// ([`crate::ProgramBank`] dispatch).
    UnknownBackground {
        /// The background with no program.
        background: u64,
    },
    /// A whole-run configuration error outside the mismatch taxonomy
    /// above (invalid port count, a batch trial yielding a wrong result
    /// count, …).
    BadConfiguration {
        /// Human-readable reason.
        reason: String,
    },
    /// A scalar-only fault family was routed at a lane-sliced engine.
    UnbatchableFault {
        /// The family's mnemonic (`AF`, `SOF`, …).
        mnemonic: &'static str,
    },
    /// Saving or loading a checkpoint failed.
    Checkpoint(CheckpointError),
    /// The [`crate::Campaign::with_deadline`] budget ran out before the
    /// universe was evaluated.
    DeadlineExceeded {
        /// Time spent before the run stopped.
        elapsed: Duration,
        /// The configured budget.
        deadline: Duration,
        /// Trials evaluated (the contiguous prefix — also the checkpoint
        /// cursor, when checkpointing is on).
        completed: usize,
        /// Trials in the whole universe.
        total: usize,
    },
    /// A shared [`crate::CancelToken`] fired before the universe was
    /// evaluated.
    Cancelled {
        /// Trials evaluated (the contiguous prefix).
        completed: usize,
        /// Trials in the whole universe.
        total: usize,
    },
    /// A worker thread panicked. The panic was caught at the fan-out
    /// join; it poisoned only its own chunk (progress before the chunk is
    /// checkpointed when checkpointing is on).
    WorkerPanic {
        /// Trial range `[start, end)` of the poisoned chunk.
        chunk: (usize, usize),
        /// The panic payload, stringified.
        payload: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The first four arms reproduce the exact phrases the PR-5
            // asserts panicked with — the panicking wrappers re-raise
            // with these strings, so `should_panic(expected = …)` tests
            // written against the asserts keep matching.
            CampaignError::GeometryMismatch { program, compiled, campaign } => write!(
                f,
                "campaign geometry does not match the geometry '{program}' was compiled for \
                 (campaign {campaign:?}, program {compiled:?})"
            ),
            CampaignError::PortShortfall { program, needed, pooled } => write!(
                f,
                "'{program}' needs {needed} ports but the campaign pools {pooled}-port memories \
                 — add .with_ports({needed})"
            ),
            CampaignError::BackgroundMismatch { program, compiled, requested } => write!(
                f,
                "trial background {requested:#x} does not match the background '{program}' was \
                 compiled for ({compiled:#x}) — compile one program per background (ProgramBank)"
            ),
            CampaignError::UnknownBackground { background } => {
                write!(f, "no program compiled for background {background:#x}")
            }
            CampaignError::BadConfiguration { reason } => write!(f, "{reason}"),
            CampaignError::UnbatchableFault { mnemonic } => {
                write!(f, "{mnemonic} faults cannot run lane-batched — use the scalar path")
            }
            CampaignError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            CampaignError::DeadlineExceeded { elapsed, deadline, completed, total } => write!(
                f,
                "deadline exceeded after {elapsed:?} (budget {deadline:?}): \
                 {completed}/{total} trials evaluated"
            ),
            CampaignError::Cancelled { completed, total } => {
                write!(f, "cancelled: {completed}/{total} trials evaluated")
            }
            CampaignError::WorkerPanic { chunk: (start, end), payload } => {
                write!(f, "worker panicked on trials {start}..{end}: {payload}")
            }
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

impl CampaignError {
    /// Re-raises the error as the panic the pre-resilience engine would
    /// have produced — the compatibility shim the panicking wrapper APIs
    /// are built on. A caught worker panic resumes with its **original
    /// payload string**, so `should_panic(expected = …)` substring checks
    /// against the panicking closure's own message still match; every
    /// other variant panics with its `Display` text (which embeds the
    /// legacy assert phrases).
    pub(crate) fn raise(self) -> ! {
        match self {
            CampaignError::WorkerPanic { payload, .. } => {
                std::panic::resume_unwind(Box::new(payload))
            }
            e => panic!("{e}"),
        }
    }
}

/// Errors produced by checkpoint persistence ([`crate::checkpoint`]).
///
/// Carries stringified paths and I/O messages (not `io::Error`) so the
/// whole campaign taxonomy stays `Clone + PartialEq` — resilience tests
/// assert on exact variants.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io {
        /// Path of the checkpoint file.
        path: String,
        /// The operation that failed (`"read"`, `"write"`, `"rename"`).
        op: &'static str,
        /// The OS error, stringified.
        message: String,
    },
    /// The file is not a well-formed checkpoint (bad magic, bad checksum,
    /// truncated payload, undecodable record…).
    Corrupt {
        /// Path of the checkpoint file.
        path: String,
        /// What failed to validate.
        reason: String,
    },
    /// The file is a checkpoint of an unsupported format version.
    VersionMismatch {
        /// Path of the checkpoint file.
        path: String,
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file is a valid checkpoint of a **different run**: its
    /// fingerprint (geometry/universe/program/backgrounds/schedule) does
    /// not match the resuming campaign's.
    FingerprintMismatch {
        /// Path of the checkpoint file.
        path: String,
        /// Fingerprint the resuming run expects.
        expected: u64,
        /// Fingerprint found in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, op, message } => {
                write!(f, "cannot {op} '{path}': {message}")
            }
            CheckpointError::Corrupt { path, reason } => {
                write!(f, "'{path}' is not a valid checkpoint: {reason}")
            }
            CheckpointError::VersionMismatch { path, found, supported } => write!(
                f,
                "'{path}' is a version-{found} checkpoint; this build supports version {supported}"
            ),
            CheckpointError::FingerprintMismatch { path, expected, found } => write!(
                f,
                "'{path}' checkpoints a different run: fingerprint {found:#018x} does not match \
                 this campaign's {expected:#018x}"
            ),
        }
    }
}

impl Error for CheckpointError {}
