//! **Experiment E8 — §3 claim C2**: Markov-chain detection analysis.
//!
//! "Applying Markov chain analysis it was shown that π-test iteration has
//! a high resolution for most memory faults."
//!
//! Closed-form single-iteration detection probabilities under the
//! uniform-TDB model vs Monte-Carlo measurement on the actual simulator,
//! plus the absorption (escape) probabilities after 1–4 iterations and the
//! iteration count needed to push escapes below 0.1%.
//!
//! Run: `cargo run --release -p prt-bench --bin table_markov [trials]`

use prt_bench::{pct, Table};
use prt_core::analysis::{
    bom_closed_forms, escape_probability, iterations_for_escape, monte_carlo_class,
};
use prt_ram::{CouplingTrigger, FaultKind};

fn class_instances(class: &str, n: usize) -> Vec<FaultKind> {
    let cells = 2..n - 2; // keep clear of seed and Fin cells
    match class {
        "SAF" => cells
            .flat_map(|c| [0u8, 1].map(|v| FaultKind::StuckAt { cell: c, bit: 0, value: v }))
            .collect(),
        "TF" => cells
            .flat_map(|c| {
                [true, false].map(|r| FaultKind::Transition { cell: c, bit: 0, rising: r })
            })
            .collect(),
        "IRF" => cells.map(|c| FaultKind::IncorrectRead { cell: c, bit: 0 }).collect(),
        "RDF" => cells.map(|c| FaultKind::ReadDestructive { cell: c, bit: 0 }).collect(),
        "DRDF" => cells.map(|c| FaultKind::DeceptiveRead { cell: c, bit: 0 }).collect(),
        "WDF" => cells.map(|c| FaultKind::WriteDisturb { cell: c, bit: 0 }).collect(),
        "SOF" => cells.map(|c| FaultKind::StuckOpen { cell: c }).collect(),
        "CFst" => cells
            .flat_map(|v| {
                [0u8, 1].into_iter().flat_map(move |s| {
                    [0u8, 1].map(move |f| FaultKind::CouplingState {
                        agg_cell: if v >= 6 { v - 4 } else { v + 4 },
                        agg_bit: 0,
                        agg_state: s,
                        victim_cell: v,
                        victim_bit: 0,
                        force: f,
                    })
                })
            })
            .collect(),
        "CFin adj" | "CFin dist" => {
            let dist = if class.ends_with("adj") { 1 } else { 4 };
            cells
                .filter(move |v| v + dist < n - 2)
                .flat_map(move |v| {
                    [CouplingTrigger::Rise, CouplingTrigger::Fall].map(|t| {
                        FaultKind::CouplingInversion {
                            agg_cell: v + dist,
                            agg_bit: 0,
                            victim_cell: v,
                            victim_bit: 0,
                            trigger: t,
                        }
                    })
                })
                .collect()
        }
        "CFid adj" | "CFid dist" => {
            let dist = if class.ends_with("adj") { 1 } else { 4 };
            cells
                .filter(move |v| v + dist < n - 2)
                .flat_map(move |v| {
                    [CouplingTrigger::Rise, CouplingTrigger::Fall].into_iter().flat_map(move |t| {
                        [0u8, 1].map(move |f| FaultKind::CouplingIdempotent {
                            agg_cell: v + dist,
                            agg_bit: 0,
                            victim_cell: v,
                            victim_bit: 0,
                            trigger: t,
                            force: f,
                        })
                    })
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

fn main() {
    let trials: u32 = prt_bench::arg_or(1, 300, "trial-count");
    let n = 12usize;
    println!("uniform-TDB model, n = {n}, {trials} Monte-Carlo trials per instance\n");

    let forms = bom_closed_forms();
    let mut t = Table::new(
        "E8: single-iteration detection probability — closed form vs Monte-Carlo",
        &["class", "closed form", "measured", "rationale"],
    );
    for model in &forms {
        let faults = class_instances(model.class, n);
        let measured = monte_carlo_class(n, &faults, trials, 0xA11CE).expect("mc");
        t.row_owned(vec![
            model.class.to_string(),
            format!("{:.3}", model.p_detect),
            format!("{measured:.3}"),
            model.rationale.to_string(),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "E8b: escape probability after T uniform-TDB iterations (Markov absorption)",
        &["class", "p", "T=1", "T=2", "T=3", "T=4", "T for <0.1%"],
    );
    for model in &forms {
        let p = model.p_detect;
        let need = iterations_for_escape(p, 0.001);
        t2.row_owned(vec![
            model.class.to_string(),
            format!("{p:.3}"),
            pct(100.0 * escape_probability(p, 1)),
            pct(100.0 * escape_probability(p, 2)),
            pct(100.0 * escape_probability(p, 3)),
            pct(100.0 * escape_probability(p, 4)),
            if need == u32::MAX { "∞".into() } else { need.to_string() },
        ]);
    }
    t2.print();
    println!(
        "\nverdict: per-cell fault classes have per-iteration resolution ≥ 1/4\n\
         (read-path faults: 1) — the paper's 'high resolution for most memory\n\
         faults'; the O(1/n) CFin/CFid rows quantify the plain-mode blind spot\n\
         that the deterministic pre-read TDBs of E3 eliminate."
    );
}
