//! **Experiment E10 — simulator validation**: the classic March coverage
//! table.
//!
//! Before trusting any PRT number, the fault simulator must reproduce the
//! known coverage of the classic March algorithms (van de Goor's tables):
//! MATS+ detects AF+SAF but not TF; MATS++ adds TF; March X adds CFin;
//! March C- covers all unlinked SAF/TF/CFin/CFid/CFst/AF; and so on. Any
//! deviation here would invalidate E3/E4 — this is the calibration table.
//!
//! Run: `cargo run --release -p prt-bench --bin table_march_baseline [n]`

use prt_bench::{pct, Table};
use prt_march::{coverage, library, Executor};
use prt_ram::{FaultUniverse, Geometry, UniverseSpec};

fn main() {
    let n: usize = prt_bench::arg_or(1, 10, "array-size");
    let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
    println!("universe: {} instances on BOM n={n}\n", universe.len());

    let classes = ["SAF", "TF", "AF", "CFin", "CFid", "CFst"];
    let mut header = vec!["test", "ops/cell"];
    header.extend(classes);
    let mut t = Table::new("E10: March baseline coverage (percent)", &header);
    let executor = Executor::new().stop_at_first_mismatch();
    for test in library::all() {
        let report = coverage::evaluate(&test, &universe, &executor);
        let mut row = vec![test.name().to_string(), test.ops_per_cell().to_string()];
        for class in classes {
            row.push(report.class(class).map_or("—".into(), |r| pct(r.percent())));
        }
        t.row_owned(row);
    }
    t.print();

    // Assert the textbook guarantees — this binary doubles as a check.
    let ex = Executor::new().stop_at_first_mismatch();
    let complete = |name: &str, test: &prt_march::MarchTest, cls: &[&str]| {
        let r = coverage::evaluate(test, &universe, &ex);
        for c in cls {
            let row = r.class(c).expect("class present");
            assert!(row.complete(), "{name} must fully cover {c}: {}/{}", row.detected, row.total);
        }
    };
    complete("MATS+", &library::mats_plus(), &["SAF", "AF"]);
    complete("MATS++", &library::mats_plus_plus(), &["SAF", "AF", "TF"]);
    complete("March X", &library::march_x(), &["SAF", "AF", "TF", "CFin"]);
    complete("March C-", &library::march_c_minus(), &["SAF", "AF", "TF", "CFin", "CFid", "CFst"]);
    println!("\nverdict: textbook guarantees reproduced exactly — simulator calibrated.");
}
