//! **Experiment E3 — §3 claim C1 (bit-oriented)**: fault coverage of
//! π-test schemes vs iteration count.
//!
//! The paper states that "all single and multi-cell memory faults are
//! detected in 3 π-test iterations with a specific TDB". This table
//! measures coverage per fault class for 1–4 pre-read iterations, the
//! synthesized full-coverage schedule, the plain (3n-cost) mode, and the
//! March C- baseline. The reproduction verdict: every class reproduces at
//! 3 iterations **except CFid**, which is structurally capped at 50% (each
//! (pair, trigger-direction) has one observable occurrence per 3-iteration
//! schedule, exposing one forced polarity); 5 synthesized iterations reach
//! 100%.
//!
//! Run: `cargo run --release -p prt-bench --bin table_coverage_bom [n]`

use prt_bench::{pct, Table};
use prt_core::PrtScheme;
use prt_gf::Field;
use prt_march::{coverage, coverage::MarchRunner, library, CoverageReport, Executor};
use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
use prt_sim::Campaign;

fn main() {
    let n: usize = prt_bench::arg_or(1, 12, "array-size");
    let field = || Field::new(1, 0b11).expect("GF(2)");
    let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
    println!(
        "universe: {} single-fault instances on a {n}-cell bit-oriented memory",
        universe.len()
    );

    let mut schemes: Vec<(String, CoverageReport, String)> = Vec::new();
    for iters in 1..=2usize {
        // Truncations of standard3 show the per-iteration progression.
        let s3 = PrtScheme::standard3(field()).expect("standard3");
        let specs = s3.iterations()[..iters].to_vec();
        let s = PrtScheme::new(field(), &[1, 1, 1], specs)
            .expect("truncated scheme")
            .with_preread(true)
            .with_final_readback(true)
            .with_name(format!("π×{iters}"));
        let ops = format!("{}n", s.ops_per_cell());
        schemes.push((format!("π×{iters} (pre-read)"), s.coverage(&universe), ops));
    }
    let s3 = PrtScheme::standard3(field()).expect("standard3");
    let ops3 = format!("{}n", s3.ops_per_cell());
    schemes.push(("π×3 standard3 (paper's claim)".to_string(), s3.coverage(&universe), ops3));
    let s4 = PrtScheme::standard4(field()).expect("standard4");
    let ops4 = format!("{}n", s4.ops_per_cell());
    schemes.push(("π×4 standard4".to_string(), s4.coverage(&universe), ops4));
    let (full, verified) =
        PrtScheme::full_coverage(field(), Geometry::bom(n)).expect("synthesis converges");
    assert_eq!(verified, universe.len());
    let ops = format!("{}n", full.ops_per_cell());
    let label = format!("π×{} synthesized", full.iterations().len());
    schemes.push((label, full.coverage(&universe), ops));

    let plain = PrtScheme::plain(field(), 3).expect("plain");
    schemes.push((
        "π×3 plain (paper cost)".to_string(),
        plain.coverage(&universe),
        format!("{}n", plain.ops_per_cell()),
    ));

    let march = library::march_c_minus();
    let march_report =
        coverage::evaluate(&march, &universe, &Executor::new().stop_at_first_mismatch());
    schemes.push(("March C- (baseline)".to_string(), march_report, "10n".to_string()));

    let classes = ["SAF", "TF", "AF", "CFin", "CFid", "CFst"];
    let mut header = vec!["scheme", "ops"];
    header.extend(classes);
    header.push("overall");
    let mut t = Table::new(format!("E3: fault coverage on BOM n={n} (percent detected)"), &header);
    for (name, report, ops) in &schemes {
        let mut row = vec![name.clone(), ops.clone()];
        for class in classes {
            row.push(report.class(class).map_or("—".into(), |r| pct(r.percent())));
        }
        row.push(pct(report.overall_percent()));
        t.row_owned(row);
    }
    t.print();

    println!(
        "\nverdict: SAF/TF/AF/CFin/CFst reproduce the paper's 3-iteration claim;\n\
         CFid is structurally capped at 50% for ANY 3-iteration schedule\n\
         (see DESIGN.md §5); the synthesized 5-iteration schedule reaches 100%."
    );

    // E3b: topological NPSF (type-1 static, von Neumann neighbourhoods) —
    // beyond the paper's universe, measuring how the schemes fare on
    // pattern-sensitive faults.
    let layout = prt_ram::Layout::squarish(Geometry::bom(16)).expect("layout");
    let npsf = layout.npsf_universe(0);
    println!("\nE3b: type-1 static NPSF on a 4×4 layout ({} instances)", npsf.len());
    let candidates: Vec<(String, PrtScheme)> = vec![
        ("π×3 standard3".into(), PrtScheme::standard3(field()).expect("s3")),
        (
            "π×5 synthesized".into(),
            PrtScheme::full_coverage(field(), Geometry::bom(16)).expect("synth").0,
        ),
    ];
    for (name, scheme) in &candidates {
        let detected = Campaign::over(Geometry::bom(16), &npsf, scheme).count_detected();
        println!("  {name}: {}", pct(100.0 * detected as f64 / npsf.len() as f64));
    }
    let ex = Executor::new().stop_at_first_mismatch();
    for test in [library::march_c_minus(), library::march_ss()] {
        let detected =
            Campaign::over(Geometry::bom(16), &npsf, MarchRunner::new(&test, &ex)).count_detected();
        println!("  {}: {}", test.name(), pct(100.0 * detected as f64 / npsf.len() as f64));
    }
    println!(
        "  (full NPSF coverage classically needs dedicated tiling tests — the\n\
         partial numbers above quantify what generic schedules catch for free)"
    );
}
