//! **Experiment E6 — §4 claim C4**: hardware overhead of the PRT BIST.
//!
//! "The ponder of the hardware overhead in comparison with the memory
//! capacity is of an order < 2⁻²⁰." The gate-level model counts the
//! structures §4 names (address-register-to-counter conversion, the XOR
//! feedback logic with CSE-optimised constant multipliers, the `Fin`
//! comparator and a small FSM) and divides by the 6T array; the table also
//! compares a conventional March BIST.
//!
//! Run: `cargo run --release -p prt-bench --bin table_overhead`

use prt_bench::{sci, Table};
use prt_core::bist::{MarchBist, PrtBist};
use prt_gf::Field;
use prt_ram::Geometry;

fn main() {
    let field = Field::new(4, 0b1_0011).expect("GF(16)");
    let g = [1u64, 2, 2];
    let bound = (0.5f64).powi(20);
    println!("paper bound: 2⁻²⁰ = {}\n", sci(bound));

    let mut t = Table::new(
        "E6: PRT BIST overhead vs capacity (m = 4, g = 1+2x+2x²)",
        &[
            "capacity",
            "cells",
            "BIST gates (xor/and/inv/dff)",
            "BIST transistors",
            "array transistors",
            "ratio",
            "< 2⁻²⁰",
            "March BIST ratio",
        ],
    );
    for log2_cells in [8u32, 12, 16, 20, 24, 28, 30] {
        let cells = 1usize << log2_cells;
        let geom = Geometry::wom(cells, 4).expect("geometry");
        let prt = PrtBist::new(geom, &field, &g);
        let march = MarchBist::new(geom);
        let gates = prt.gates();
        t.row_owned(vec![
            format!("{} bits", geom.capacity_bits()),
            format!("2^{log2_cells}"),
            format!("{}/{}/{}/{}", gates.xor2, gates.and2, gates.not1, gates.dff),
            prt.bist_transistors().to_string(),
            prt.array_transistors().to_string(),
            sci(prt.overhead_ratio()),
            prt.meets_paper_bound().to_string(),
            sci(march.overhead_ratio()),
        ]);
    }
    t.print();

    // Find the exact crossover capacity.
    let mut lo = 1usize;
    let mut hi = 1usize << 32;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let geom = Geometry::wom(mid.max(4), 4).expect("geometry");
        if PrtBist::new(geom, &field, &g).meets_paper_bound() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let geom = Geometry::wom(lo, 4).expect("geometry");
    println!(
        "\ncrossover: the 2⁻²⁰ bound is met from {} cells ({} bits ≈ 2^{:.1}) upward",
        lo,
        geom.capacity_bits(),
        (geom.capacity_bits() as f64).log2()
    );
    println!(
        "verdict: the paper's <2⁻²⁰ 'ponder' holds for gigabit-class parts — the\n\
         regime §4 targets — and PRT stays ~2× leaner than a March BIST because\n\
         the array itself is both pattern generator and signature register."
    );
}
