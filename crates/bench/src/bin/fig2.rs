//! **Experiment E9 — Figure 2**: the dual-port pseudo-ring scheme.
//!
//! Figure 2 shows the 2-stage-LFSR evolution on a two-port RAM: both
//! operand reads are issued in the same cycle (one per port), then the
//! write commits — `2n` cycles per iteration instead of `3n`. This binary
//! traces the schedule cycle by cycle for a small memory, verifies that
//! dual-port and single-port runs produce identical `Fin`, and checks the
//! paper's recommendation that the scheme suits a two-term `g(x)`.
//!
//! Run: `cargo run --release -p prt-bench --bin fig2`

use prt_bench::Table;
use prt_core::PiTest;
use prt_ram::{Geometry, Ram};

fn main() {
    let pi = PiTest::figure_1b().expect("paper automaton");
    println!("dual-port π-test, g(x) has two feedback terms (g1 = g2 = 2) as §4 recommends\n");

    // Cycle-by-cycle trace for n = 8 (what Figure 2 draws as edges).
    let n = 8usize;
    let mut t = Table::new(
        format!("Figure 2 schedule trace (n = {n}, k = 2)"),
        &["cycle", "port A", "port B"],
    );
    t.row(&["1", "w c0 ← Init0", "w c1 ← Init1"]);
    let mut cycle = 1;
    for i in 0..n - 2 {
        cycle += 1;
        t.row_owned(vec![cycle.to_string(), format!("r c{i}"), format!("r c{}", i + 1)]);
        cycle += 1;
        t.row_owned(vec![
            cycle.to_string(),
            format!("w c{} ← 2·r{} ⊕ 2·r{}", i + 2, i, i + 1),
            "idle".to_string(),
        ]);
    }
    cycle += 1;
    t.row_owned(vec![
        cycle.to_string(),
        format!("r c{} (Fin)", n - 2),
        format!("r c{} (Fin)", n - 1),
    ]);
    t.print();
    println!("total: {cycle} cycles = 2n − 2\n");

    // Measured equivalence and speedup across sizes.
    let mut t2 = Table::new(
        "measured dual-port runs (word-oriented, GF(2⁴))",
        &["n", "1P cycles", "2P cycles", "speedup", "Fin equal", "detects like 1P"],
    );
    for n in [16usize, 64, 257] {
        let mut single = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        let r1 = pi.run(&mut single).expect("run");
        let mut dual = Ram::with_ports(Geometry::wom(n, 4).expect("geometry"), 2).expect("ports");
        let r2 = pi.run_dual_port(&mut dual).expect("run");
        assert_eq!(r1.fin(), r2.fin());
        // Same check under a fault.
        let fault = prt_ram::FaultKind::StuckAt { cell: n / 2, bit: 1, value: 1 };
        let mut fs = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        fs.inject(fault.clone()).expect("inject");
        let f1 = pi.run(&mut fs).expect("run");
        let mut fd = Ram::with_ports(Geometry::wom(n, 4).expect("geometry"), 2).expect("ports");
        fd.inject(fault).expect("inject");
        let f2 = pi.run_dual_port(&mut fd).expect("run");
        t2.row_owned(vec![
            n.to_string(),
            r1.cycles().to_string(),
            r2.cycles().to_string(),
            format!("{:.2}×", r1.cycles() as f64 / r2.cycles() as f64),
            (r1.fin() == r2.fin()).to_string(),
            (f1.detected() == f2.detected()).to_string(),
        ]);
    }
    t2.print();
    println!(
        "\nverdict: the Figure 2 schedule measures exactly 2n − 2 cycles with\n\
         behaviour identical to the single-port iteration — the paper's 2n claim."
    );
}
