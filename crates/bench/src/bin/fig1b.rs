//! **Experiment E2 — Figure 1b**: a π-test iteration on a word-oriented
//! memory over GF(2⁴).
//!
//! Reproduces the paper's Figure 1b: `g(x) = 1 + 2x + 2x²` over GF(2⁴)
//! with `p(z) = 1 + z + z⁴`, seeded `Init = (0, 1)` — cell sequence
//! `0, 1, 2, 6, …` (the figure prints `0 1 2 6 1F … 1 0`; the `1F` glyph is
//! an artefact of the scan — elements of GF(2⁴) are one hex digit). The
//! paper's irreducibility statement for `g` and the ring closure at
//! `period | (n − k)` are machine-checked.
//!
//! Run: `cargo run --release -p prt-bench --bin fig1b`

use prt_bench::Table;
use prt_core::PiTest;
use prt_gf::{Field, PolyGf};
use prt_ram::{Geometry, Ram};

fn main() {
    let field = Field::new(4, 0b1_0011).expect("p(z) = z⁴ + z + 1");
    let g = PolyGf::new(&field, vec![1, 2, 2]).expect("g(x) = 1 + 2x + 2x²");
    println!("field: {field}");
    println!(
        "g(x) = {g}: irreducible over GF(2⁴)? {} (paper asserts: yes)",
        g.is_irreducible(&field)
    );

    let pi = PiTest::figure_1b().expect("figure 1b automaton");
    let period = pi.period().expect("period");
    println!("LFSR period from Init (0,1): {period}  (divides q²−1 = 255: {})", 255 % period == 0);

    let prefix = pi.expected_sequence(16);
    let hex: Vec<String> = prefix.iter().map(|v| format!("{v:X}")).collect();
    println!("\nTDB sequence (first 16 cells, hex): {}", hex.join(" "));
    assert_eq!(&prefix[..4], &[0, 1, 2, 6], "the figure's visible prefix");

    // Ring closure at n = period + k, as the figure shows (… 1 0 back to Init).
    let n = period as usize + 2;
    let mut ram = Ram::new(Geometry::wom(n, 4).expect("geometry"));
    let res = pi.run(&mut ram).expect("run");
    println!(
        "\nn = period + k = {n}: Fin = {:X?}  Init = {:?}  ring closed: {}",
        res.fin(),
        pi.init(),
        res.fin() == pi.init()
    );
    println!("ops = {} (= 3n − 2 = {})", res.ops(), 3 * n - 2);

    // Last cells of the array wrap to the seed values — the figure's "… 1 0".
    let tail: Vec<String> = (n - 4..n).map(|c| format!("{:X}", ram.peek(c))).collect();
    println!("last four cells: {} (sequence re-entering Init)", tail.join(" "));

    // Every irreducible degree-2 generator over GF(16): period census.
    let mut t = Table::new(
        "irreducible g(x) = g0 + g1·x + g2·x² over GF(2⁴): period census",
        &["example g", "period", "count", "primitive"],
    );
    let mut by_period: Vec<(u128, usize, String)> = Vec::new();
    for g1 in 0..16u64 {
        for g2 in 1..16u64 {
            let cand = PolyGf::new(&field, vec![1, g1, g2]).expect("coeffs");
            if !cand.is_irreducible(&field) {
                continue;
            }
            let o = cand.order_of_x(&field).expect("irreducible");
            match by_period.iter_mut().find(|(p, _, _)| *p == o) {
                Some((_, c, _)) => *c += 1,
                None => by_period.push((o, 1, cand.to_string())),
            }
        }
    }
    by_period.sort_unstable_by_key(|&(p, _, _)| p);
    for (p, c, example) in by_period {
        t.row_owned(vec![example, p.to_string(), c.to_string(), (p == 255).to_string()]);
    }
    t.print();
}
