//! **Experiment E5 — §3 claim C3 + §4 (Figure 2)**: time complexity of
//! π-test iterations across port counts, against the March baselines.
//!
//! The paper claims `O(3n)` per π-iteration on single-port RAM and `2n`
//! cycles on dual-port RAM (simultaneous operand reads, Figure 2); §4 also
//! sketches multi-LFSR schemes for quad-port parts (≈ `n` here). All three
//! numbers are *measured* from the simulator's cycle counters, not assumed.
//!
//! Run: `cargo run --release -p prt-bench --bin table_complexity`

use prt_bench::Table;
use prt_core::PiTest;
use prt_march::{library, Executor};
use prt_ram::{Geometry, Ram};

fn main() {
    let pi = PiTest::figure_1a().expect("automaton");

    let mut t = Table::new(
        "E5a: measured cycles per π-iteration vs ports (BOM, k = 2)",
        &["n", "1-port cycles", "3n−2", "2-port cycles", "2n−2", "4-port cycles", "n"],
    );
    for n in [16usize, 64, 256, 1024] {
        let mut r1 = Ram::new(Geometry::bom(n));
        let c1 = pi.run(&mut r1).expect("run").cycles();
        let mut r2 = Ram::with_ports(Geometry::bom(n), 2).expect("2 ports");
        let c2 = pi.run_dual_port(&mut r2).expect("run").cycles();
        let mut r4 = Ram::with_ports(Geometry::bom(n), 4).expect("4 ports");
        let c4 = pi.run_quad_port(&mut r4).expect("run").cycles();
        assert_eq!(c1, 3 * n as u64 - 2, "paper's O(3n)");
        assert_eq!(c2, 2 * n as u64 - 2, "paper's 2n");
        assert_eq!(c4, n as u64, "multi-LFSR ≈ n");
        t.row_owned(vec![
            n.to_string(),
            c1.to_string(),
            (3 * n - 2).to_string(),
            c2.to_string(),
            (2 * n - 2).to_string(),
            c4.to_string(),
            n.to_string(),
        ]);
    }
    t.print();

    let n = 1024usize;
    let mut t2 = Table::new(
        format!("E5b: operation counts of complete tests (n = {n})"),
        &["test", "ops/cell", "total ops", "vs π×1 (1P)"],
    );
    let pi_ops = {
        let mut ram = Ram::new(Geometry::bom(n));
        pi.run(&mut ram).expect("run").ops()
    };
    t2.row_owned(vec![
        "π-iteration (paper)".into(),
        "3".into(),
        pi_ops.to_string(),
        "1.00×".into(),
    ]);
    for test in library::all() {
        let mut ram = Ram::new(Geometry::bom(n));
        let ops = Executor::new().run(&test, &mut ram).ops();
        t2.row_owned(vec![
            test.name().to_string(),
            test.ops_per_cell().to_string(),
            ops.to_string(),
            format!("{:.2}×", ops as f64 / pi_ops as f64),
        ]);
    }
    t2.print();

    println!(
        "\nverdict: π-iteration measures exactly 3n−2 single-port operations and\n\
         2n−2 dual-port cycles — the paper's complexity claims hold; a March C-\n\
         pass costs 3.3× one π-iteration, the full-coverage π schedule (18n) costs\n\
         1.8× March C- while also using no external data generator."
    );
}
