//! Machine-readable campaign throughput: the `coverage_campaign` rows as
//! JSON, so the perf trajectory is tracked per PR instead of scraped from
//! Criterion's plain-text output.
//!
//! Run: `cargo run --release -p prt-bench --bin bench_json [out.json]`
//!
//! Writes `BENCH_campaign.json` (or the given path) in the
//! **`campaign-v4` schema**: the header records the measurement budget,
//! the runner's thread count, the detected CPU core count, the default
//! lane-chunk width and the git revision (so perf trajectories stay
//! comparable across runners), then one row per (group, n, variant) with
//! faults/second — including the `batch_*` variants of the lane-sliced
//! engine at 64 (`batch_sequential`, the baseline), 256 (`batch256`) and
//! 512 (`batch512`) lanes per pass, the `sliced_*` variants of the
//! activity-driven program slicer against those full-pass rows, and a
//! `campaign_threads_sweep` group scheduling whole lane chunks across
//! 1/2/4/8 workers — plus the diagnosis subsystem rows (dictionary build
//! and adaptive localization throughput) and a `service` group measuring
//! the campaign server's localhost latency (submit→first-delta and
//! submit→done, `mean_ns` is the latency). Tuning: `BENCH_JSON_MS` sets
//! the per-row measurement budget (default 200 ms — CI smoke runs use a
//! lower value; trend numbers come from the default).

use std::time::Instant;

use prt_core::PrtScheme;
use prt_diag::{FaultDictionary, Localizer};
use prt_gf::{Field, Poly2};
use prt_march::{coverage, coverage::MarchRunner, library, Executor};
use prt_ram::{FaultUniverse, Geometry, Ram, Scrambler, Topology, UniverseSpec};
use prt_sim::{Campaign, LaneWidth, Parallelism};

struct Row {
    group: &'static str,
    n: usize,
    variant: &'static str,
    unit: &'static str,
    elements: usize,
    iters: u64,
    mean_ns: f64,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.elements as f64 / (self.mean_ns * 1e-9)
    }

    fn json(&self) -> String {
        format!(
            r#"    {{"group": "{}", "n": {}, "variant": "{}", "unit": "{}", "throughput": {:.1}, "elements": {}, "iters": {}, "mean_ns": {:.0}}}"#,
            self.group,
            self.n,
            self.variant,
            self.unit,
            self.throughput(),
            self.elements,
            self.iters,
            self.mean_ns
        )
    }
}

/// Escapes a string for embedding in a JSON string literal (the revision
/// can come from the environment, so quotes/backslashes must not corrupt
/// the document).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The compiled-program campaign variants every group measures:
/// `(variant, lane batching, parallelism, lane width, activity slicing)`.
/// The `compiled_*` rows pin the scalar engine the `batch_*` rows are
/// compared against; `batch_sequential` stays pinned to 64 lanes as the
/// cross-PR baseline, `batch256`/`batch512` measure the wide chunks
/// against it, and `batch_parallel` runs the default width across all
/// cores. The `batch_*` rows pin `with_slicing(false)` — the full-pass
/// engine — so the `sliced_*` rows isolate the activity-slicing win at
/// matching width/parallelism (64-lane sequential, 512-lane sequential,
/// 512-lane all-cores).
const PROGRAM_VARIANTS: [(&str, bool, Parallelism, LaneWidth, bool); 9] = [
    ("compiled_sequential", false, Parallelism::Sequential, LaneWidth::X64, false),
    ("compiled_parallel", false, Parallelism::Auto, LaneWidth::X64, false),
    ("batch_sequential", true, Parallelism::Sequential, LaneWidth::X64, false),
    ("batch256", true, Parallelism::Sequential, LaneWidth::X256, false),
    ("batch512", true, Parallelism::Sequential, LaneWidth::X512, false),
    ("batch_parallel", true, Parallelism::Auto, LaneWidth::X512, false),
    ("sliced_sequential", true, Parallelism::Sequential, LaneWidth::X64, true),
    ("sliced512", true, Parallelism::Sequential, LaneWidth::X512, true),
    ("sliced_parallel", true, Parallelism::Auto, LaneWidth::X512, true),
];

/// The git revision of the working tree, for cross-runner trajectory
/// comparisons (`GIT_REVISION` overrides; "unknown" when git is absent).
fn git_revision() -> String {
    if let Ok(rev) = std::env::var("GIT_REVISION") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Calibrated timing loop: run `f` until the measurement budget is spent,
/// report the mean time per call.
fn measure<F: FnMut()>(budget_ms: u64, mut f: F) -> (u64, f64) {
    // Warm-up + calibration pass.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let budget = budget_ms * 1_000_000;
    let iters = (budget / once).clamp(1, 1_000_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    (iters, t1.elapsed().as_nanos() as f64 / iters as f64)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let budget_ms: u64 = prt_bench::env_or("BENCH_JSON_MS", 200);
    let mut rows: Vec<Row> = Vec::new();
    let mut push = |group: &'static str,
                    n: usize,
                    variant: &'static str,
                    elements: usize,
                    m: (u64, f64)| {
        let unit = match (group, variant) {
            (_, "localize") => "diagnoses_per_sec",
            ("service", _) => "jobs_per_sec",
            _ => "faults_per_sec",
        };
        let row = Row { group, n, variant, unit, elements, iters: m.0, mean_ns: m.1 };
        eprintln!("{group}/{variant} n={n}: {:.0} {unit} ({} iters)", row.throughput(), row.iters);
        rows.push(row);
    };

    // March C- on the BOM paper-claim universe.
    let test = library::march_c_minus();
    let ex = Executor::new().stop_at_first_mismatch();
    for n in [16usize, 32] {
        let u = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        let len = u.len();
        push(
            "campaign_march_c_minus",
            n,
            "seed_alloc_per_fault",
            len,
            measure(budget_ms, || {
                let _ = Campaign::new(&u, MarchRunner::new(&test, &ex)).detections_reference();
            }),
        );
        push(
            "campaign_march_c_minus",
            n,
            "pooled_sequential",
            len,
            measure(budget_ms, || {
                let _ = Campaign::new(&u, MarchRunner::new(&test, &ex))
                    .with_parallelism(Parallelism::Sequential)
                    .detections();
            }),
        );
        for (variant, batching, par, width, slicing) in PROGRAM_VARIANTS {
            push(
                "campaign_march_c_minus",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let program = ex.compile(&test, u.geometry());
                    let _ = Campaign::new(&u, &program)
                        .with_lane_batching(batching)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
    }

    // Threads × lane-chunk scheduling sweep: March C- at n = 32, default
    // lane width, whole chunks fanned out across an explicit worker
    // count. On a single-core runner the rows flatline — the group is
    // still emitted so multi-core runners chart the scaling curve.
    {
        let n = 32usize;
        let u = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        let len = u.len();
        let program = ex.compile(&test, u.geometry());
        for (variant, threads) in [
            ("batch_threads_1", 1usize),
            ("batch_threads_2", 2),
            ("batch_threads_4", 4),
            ("batch_threads_8", 8),
        ] {
            push(
                "campaign_threads_sweep",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    // Pinned to the full pass: these rows are cross-PR
                    // scheduling baselines, not slicing measurements.
                    let _ = Campaign::new(&u, &program)
                        .with_slicing(false)
                        .with_parallelism(Parallelism::Threads(threads))
                        .detections();
                }),
            );
        }
    }

    // Wide-chunk scaling at large n: the single-cell universe on a 1 Kib
    // BOM array spreads the faults thin (4 per cell), so per-pass
    // dispatch — not fault enforcement — dominates and the wider chunks
    // amortize it across more lanes. This is the group where the
    // 256/512-lane widths separate from the legacy 64-lane baseline
    // (batch-only: the scalar interpreter needs seconds per pass here).
    {
        let n = 1024usize;
        let u = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::single_cell());
        let len = u.len();
        let program = ex.compile(&test, u.geometry());
        for (variant, batching, par, width, slicing) in PROGRAM_VARIANTS {
            if !batching {
                continue;
            }
            push(
                "campaign_march_large",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let _ = Campaign::new(&u, &program)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
        // The same sweep under a bit-reversal scramble: the universe is
        // enumerated over physical coordinates and mapped back to
        // logical addresses, so the fault list arrives scattered and the
        // slicer's locality re-grouping is what keeps `scrambled_sliced_*`
        // near the identity rows (gated in CI at 1.3×).
        let topology = Topology::identity(n)
            .then_swizzle(Scrambler::reversed(n.trailing_zeros()))
            .expect("1 Kib bit-reversal");
        let su =
            FaultUniverse::enumerate_with(Geometry::bom(n), &UniverseSpec::single_cell(), topology);
        assert_eq!(su.len(), len, "a bijection cannot change the universe size");
        for (variant, par, width, slicing) in [
            ("scrambled_batch_sequential", Parallelism::Sequential, LaneWidth::X64, false),
            ("scrambled_sliced_sequential", Parallelism::Sequential, LaneWidth::X64, true),
            ("scrambled_sliced_parallel", Parallelism::Auto, LaneWidth::X512, true),
        ] {
            push(
                "campaign_march_large",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let _ = Campaign::new(&su, &program)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
    }

    // The two newest library algorithms, wired into the batch campaigns
    // (sequential variants only — enough for the batch-vs-compiled trend).
    for (group, test) in
        [("campaign_march_u", library::march_u()), ("campaign_march_raw", library::march_raw())]
    {
        let n = 16usize;
        let u = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        let len = u.len();
        for (variant, batching, par, width, slicing) in PROGRAM_VARIANTS {
            if par != Parallelism::Sequential {
                continue;
            }
            push(
                group,
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let program = ex.compile(&test, u.geometry());
                    let _ = Campaign::new(&u, &program)
                        .with_lane_batching(batching)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
    }

    // The newly lane-batched families: a universe of exactly the
    // read/write-logic (RDF/DRDF/IRF/WDF), stuck-open and address-decoder
    // instances that ran scalar before the LaneRam decoder/sense/flip
    // models landed — the batch_vs_compiled margin here is pure PR gain.
    {
        let n = 16usize;
        let spec = UniverseSpec {
            af: true,
            sof: true,
            rdf: true,
            drdf: true,
            irf: true,
            wdf: true,
            ..UniverseSpec::default()
        };
        let u = FaultUniverse::enumerate(Geometry::bom(n), &spec);
        let len = u.len();
        for (variant, batching, par, width, slicing) in PROGRAM_VARIANTS {
            if par != Parallelism::Sequential {
                continue;
            }
            push(
                "campaign_march_rwlogic_sof_af",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let program = ex.compile(&test, u.geometry());
                    let _ = Campaign::new(&u, &program)
                        .with_lane_batching(batching)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
    }

    // PRT standard3.
    let scheme = PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme");
    {
        let n = 24usize;
        let u = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        let len = u.len();
        push(
            "campaign_prt_standard3",
            n,
            "seed_alloc_per_fault",
            len,
            measure(budget_ms, || {
                let _ = Campaign::new(&u, &scheme).detections_reference();
            }),
        );
        push(
            "campaign_prt_standard3",
            n,
            "pooled_sequential",
            len,
            measure(budget_ms, || {
                let _ = Campaign::new(&u, &scheme)
                    .with_parallelism(Parallelism::Sequential)
                    .detections();
            }),
        );
        for (variant, batching, par, width, slicing) in PROGRAM_VARIANTS {
            push(
                "campaign_prt_standard3",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let program = scheme.compile(u.geometry()).expect("compile");
                    let _ = Campaign::new(&u, &program)
                        .with_lane_batching(batching)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
    }

    // Multi-background WOM sweep.
    {
        let n = 12usize;
        let bgs = coverage::standard_backgrounds(4);
        let spec = UniverseSpec {
            coupling_radius: Some(3),
            intra_word: true,
            ..UniverseSpec::paper_claim()
        };
        let u = FaultUniverse::enumerate(Geometry::wom(n, 4).expect("geometry"), &spec);
        let len = u.len();
        push(
            "campaign_march_multibg_wom",
            n,
            "pooled_sequential",
            len,
            measure(budget_ms, || {
                let _ = Campaign::new(&u, MarchRunner::new(&test, &ex))
                    .with_backgrounds(&bgs)
                    .with_parallelism(Parallelism::Sequential)
                    .detections();
            }),
        );
        for (variant, batching, par, width, slicing) in PROGRAM_VARIANTS {
            push(
                "campaign_march_multibg_wom",
                n,
                variant,
                len,
                measure(budget_ms, || {
                    let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
                    let _ = Campaign::new(&u, &bank)
                        .with_backgrounds(&bgs)
                        .with_lane_batching(batching)
                        .with_lane_width(width)
                        .with_slicing(slicing)
                        .with_parallelism(par)
                        .detections();
                }),
            );
        }
    }

    // Diagnosis subsystem: dictionary build and adaptive localization.
    {
        let n = 16usize;
        let geom = Geometry::bom(n);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let len = u.len();
        let program = Executor::new().compile(&library::march_diag(), geom);
        let poly = Poly2::from_bits(0b1_0001_1011);
        // Dictionary builds run the batched map_trials mode by default;
        // the scalar row pins the engine they are measured against.
        push(
            "campaign_diagnosis",
            n,
            "dictionary_build_scalar",
            len,
            measure(budget_ms, || {
                let _ = FaultDictionary::build_with_batching(
                    &u,
                    &program,
                    poly,
                    Parallelism::Auto,
                    false,
                )
                .expect("build");
            }),
        );
        push(
            "campaign_diagnosis",
            n,
            "dictionary_build_batched",
            len,
            measure(budget_ms, || {
                let _ =
                    FaultDictionary::build(&u, &program, poly, Parallelism::Auto).expect("build");
            }),
        );
        let dict = FaultDictionary::build(&u, &program, poly, Parallelism::Auto).expect("build");
        let localizer = Localizer::new(library::march_diag(), geom).with_dictionary(&dict);
        // Localization throughput over a fixed fault sample (one diagnosis
        // per universe stride), reported as diagnoses/second.
        let sample: Vec<usize> = (0..len).step_by(len.div_ceil(32).max(1)).collect();
        let samples = sample.len();
        push(
            "campaign_diagnosis",
            n,
            "localize",
            samples,
            measure(budget_ms, || {
                for &i in &sample {
                    let mut ram = Ram::new(geom);
                    ram.inject(u.faults()[i].clone()).expect("valid");
                    let _ = localizer.diagnose(&mut ram).expect("diagnose");
                }
            }),
        );
    }

    // Campaign service latency over localhost: an in-process server on a
    // loopback socket, one row per client-observed milestone — submit →
    // first streamed coverage delta, and submit → done (the whole-job
    // round trip including connect, frame encode/decode and the sharded
    // sweep). `elements` is 1, so `mean_ns` IS the latency and the
    // throughput field reads as jobs per second.
    {
        let server =
            prt_svc::Server::spawn(prt_svc::ServerConfig::default()).expect("bind loopback");
        let addr = server.addr();
        let job = prt_svc::JobSpec {
            family: "March C-".to_string(),
            cells: 16,
            width: 1,
            spec: UniverseSpec::paper_claim(),
            backgrounds: vec![0],
            lane_width: 0,
            deadline_ms: 0,
            segment: 64,
            topology: None,
        };
        push(
            "service",
            16,
            "submit_first_delta",
            1,
            measure(budget_ms, || {
                let client = prt_svc::Client::connect(addr).expect("connect");
                let mut stream = client.submit(&job).expect("submit");
                loop {
                    match stream.next_event().expect("event") {
                        Some(prt_svc::Event::Delta(_)) => break,
                        Some(_) => continue,
                        None => panic!("stream ended before the first delta"),
                    }
                }
                // Dropping the stream here closes the connection; the
                // server treats it as a cancel and reaps the job.
            }),
        );
        push(
            "service",
            16,
            "submit_done",
            1,
            measure(budget_ms, || {
                let client = prt_svc::Client::connect(addr).expect("connect");
                let stream = client.submit(&job).expect("submit");
                let (_deltas, done) = stream.drain().expect("drain");
                assert_eq!(done.evaluated, done.total, "service job must complete");
            }),
        );
        server.shutdown();
    }

    let cpu_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"prt-bench/campaign-v4\",\n");
    json.push_str(&format!("  \"measure_ms\": {budget_ms},\n"));
    json.push_str(&format!("  \"threads\": {cpu_cores},\n"));
    json.push_str(&format!("  \"cpu_cores\": {cpu_cores},\n"));
    json.push_str(&format!("  \"lane_width\": {},\n", LaneWidth::default().lanes()));
    json.push_str(&format!("  \"git_revision\": \"{}\",\n", json_escape(&git_revision())));
    json.push_str("  \"rows\": [\n");
    let body: Vec<String> = rows.iter().map(Row::json).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    // Atomic publish: consumers polling the file see the old complete
    // run or the new one, never a torn half-write.
    if let Err(e) = prt_bench::write_atomic(&out_path, &json) {
        prt_bench::die(format!("cannot write {out_path}: {e}"));
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
