//! **Experiment E4 — §3 claim C1 (word-oriented) + §2 claim C6
//! (intra-word faults, parallel vs random trajectories)**.
//!
//! Part 1 measures the standard schemes on the word-oriented universe
//! (inter-cell + intra-word faults) with the paper's own generator
//! `g = 1 + 2x + 2x²` over GF(2⁴).
//!
//! Part 2 isolates the paper's §2 statement that intra-word faults need
//! either parallel or *random* bit-plane trajectories: a single π-iteration
//! with mirrored (parallel) planes vs decorrelated (random) planes on the
//! intra-word coupling universe — random wins decisively, exactly the
//! paper's point.
//!
//! Run: `cargo run --release -p prt-bench --bin table_coverage_wom [n]`

use prt_bench::{pct, Table};
use prt_core::{BitPlanePi, PlaneSeeding, PrtScheme};
use prt_gf::{Field, Poly2};
use prt_march::{coverage, library, Executor};
use prt_ram::{FaultUniverse, Geometry, Ram, UniverseSpec};
use prt_sim::Campaign;

fn main() {
    let n: usize = prt_bench::arg_or(1, 9, "array-size");
    let m = 4u32;
    let field = || Field::new(4, 0b1_0011).expect("GF(16)");
    let geom = Geometry::wom(n, m).expect("geometry");

    // Part 1: full WOM universe, standard schemes vs March baseline.
    let spec =
        UniverseSpec { coupling_radius: Some(3), intra_word: true, ..UniverseSpec::paper_claim() };
    let universe = FaultUniverse::enumerate(geom, &spec);
    println!(
        "universe: {} instances on a {n}×{m}b word-oriented memory (radius-3 couplings + intra-word)",
        universe.len()
    );
    let classes = ["SAF", "TF", "AF", "CFin", "CFid", "CFst"];
    let mut header = vec!["scheme"];
    header.extend(classes);
    header.push("overall");
    let mut t = Table::new(format!("E4a: WOM coverage, n={n}, m={m}"), &header);
    let schemes = vec![
        ("π×3 standard3", PrtScheme::standard3(field()).expect("s3")),
        ("π×4 standard4", PrtScheme::standard4(field()).expect("s4")),
        ("π×6 plain", PrtScheme::plain(field(), 6).expect("plain")),
    ];
    for (name, scheme) in schemes {
        let report = scheme.coverage(&universe);
        let mut row = vec![name.to_string()];
        for class in classes {
            row.push(report.class(class).map_or("—".into(), |r| pct(r.percent())));
        }
        row.push(pct(report.overall_percent()));
        t.row_owned(row);
    }
    let ex = Executor::new().stop_at_first_mismatch();
    let march_report = coverage::evaluate(&library::march_c_minus(), &universe, &ex);
    let mut row = vec!["March C- (bg 0)".to_string()];
    for class in classes {
        row.push(march_report.class(class).map_or("—".into(), |r| pct(r.percent())));
    }
    row.push(pct(march_report.overall_percent()));
    t.row_owned(row);
    // The standard word-oriented remedy: one run per data background.
    let bgs = coverage::standard_backgrounds(m);
    let multi_bg =
        coverage::evaluate_multi_background(&library::march_c_minus(), &universe, &ex, &bgs);
    let mut row = vec![format!("March C- ×{} bg", bgs.len())];
    for class in classes {
        row.push(multi_bg.class(class).map_or("—".into(), |r| pct(r.percent())));
    }
    row.push(pct(multi_bg.overall_percent()));
    t.row_owned(row);
    // The PRT-side analogue: decorrelated bit-plane rounds.
    let planes = prt_core::plane::PlaneScheme::standard(Poly2::from_bits(0b111), m, 8)
        .expect("plane scheme");
    let plane_report = planes.coverage(&universe);
    let mut row = vec!["plane π×8 (decorrelated)".to_string()];
    for class in classes {
        row.push(plane_report.class(class).map_or("—".into(), |r| pct(r.percent())));
    }
    row.push(pct(plane_report.overall_percent()));
    t.row_owned(row);
    t.print();

    // Part 2: intra-word couplings only — parallel vs decorrelated planes.
    let intra_spec = UniverseSpec {
        cfin: true,
        cfid: true,
        cfst: true,
        coupling_radius: Some(0),
        intra_word: true,
        ..UniverseSpec::default()
    };
    let intra = FaultUniverse::enumerate(geom, &intra_spec);
    let poly = Poly2::from_bits(0b111);
    // Multi-iteration plane schedules. With *parallel* (mirrored) planes
    // the victim bit always equals the aggressor bit, so a state coupling
    // forcing the victim to the aggressor's own value (⟨s;s⟩) can never be
    // observed, no matter how many iterations run. Decorrelated ("random")
    // per-plane seeds rotate the (aggressor, victim) value combinations
    // across iterations and accumulate full visibility — the paper's §2
    // prescription. (A single iteration is aggregate-invariant across
    // seedings: decorrelation changes WHICH instances are caught, not how
    // many — hence the multi-iteration comparison.)
    let parallel: Vec<PlaneSeeding> = vec![
        PlaneSeeding::Parallel { seed: 0b10 },
        PlaneSeeding::Parallel { seed: 0b01 },
        PlaneSeeding::Parallel { seed: 0b11 },
        PlaneSeeding::Parallel { seed: 0b10 },
    ];
    let decorrelated: Vec<PlaneSeeding> = vec![
        PlaneSeeding::Explicit(vec![0b01, 0b10, 0b11, 0b01]),
        PlaneSeeding::Explicit(vec![0b10, 0b11, 0b01, 0b11]),
        PlaneSeeding::Explicit(vec![0b11, 0b01, 0b10, 0b10]),
        PlaneSeeding::Explicit(vec![0b10, 0b01, 0b11, 0b01]),
    ];
    let random: Vec<PlaneSeeding> = (0..4).map(|i| PlaneSeeding::Random { seed: 2 + i }).collect();
    let mut t2 = Table::new(
        format!("E4b: 1–4 plane-π iterations on intra-word couplings, n={n}, m={m}"),
        &["plane seeding", "iters", "CFin", "CFid", "CFst", "overall"],
    );
    for (name, schedule) in [
        ("parallel (mirrored)", &parallel),
        ("random (paper §2)", &random),
        ("explicit decorrelated", &decorrelated),
    ] {
        for iters in [1usize, 2, 4] {
            // One campaign per schedule prefix: the runner plays the first
            // `iters` plane iterations back-to-back on the pooled memory,
            // accumulating state exactly like the historical loop did.
            let runner = |ram: &mut Ram, _bg: u64| {
                let mut detected = false;
                for seeding in &schedule[..iters] {
                    let pi = BitPlanePi::new(poly, seeding.clone()).expect("plane π");
                    detected |= pi.run(ram).map(|r| r.detected()).unwrap_or(false);
                }
                detected
            };
            let report = Campaign::new(&intra, runner).with_name(format!("{name} ×{iters}")).run();
            let cell = |class: &str| -> String {
                report.class(class).map_or("—".into(), |r| pct(r.percent()))
            };
            t2.row_owned(vec![
                name.to_string(),
                iters.to_string(),
                cell("CFin"),
                cell("CFid"),
                cell("CFst"),
                pct(report.overall_percent()),
            ]);
        }
    }
    t2.print();
    println!(
        "\nverdict: with repeated iterations, mirrored planes plateau (⟨s;s⟩ state\n\
         couplings stay invisible) while decorrelated ('random') plane seeding —\n\
         the paper's §2 prescription — keeps accumulating intra-word coverage."
    );
}
