//! **Experiment E7 — §2 claim C5**: XOR-only constant multipliers.
//!
//! "It's proposed an algorithm to design the optimal scheme of
//! multiplication by a constant in GF. Multiplier by a constant contains
//! only XOR-gates and can be implemented inherently in the memory
//! circuit."
//!
//! For every field GF(2^m), m = 2..8, this table reports the XOR-gate cost
//! of multiplying by each constant: naive (per-output chains) vs the
//! greedy common-subexpression synthesis (Paar), plus logic depth. Every
//! synthesized network is verified gate-by-gate against the field
//! multiplication.
//!
//! Run: `cargo run --release -p prt-bench --bin table_multiplier`

use prt_bench::Table;
use prt_gf::{mult_synth, Field, SynthesisStrategy};

fn main() {
    let mut t = Table::new(
        "E7: XOR gates for x ↦ c·x in GF(2^m) (all constants c ≥ 2)",
        &["m", "constants", "naive avg", "naive max", "CSE avg", "CSE max", "saved", "max depth"],
    );
    for m in 2..=8u32 {
        let field = Field::gf(m).expect("default field");
        let survey = mult_synth::survey_field(&field);
        let count = survey.len();
        let naive_sum: usize = survey.iter().map(|c| c.naive_gates).sum();
        let paar_sum: usize = survey.iter().map(|c| c.paar_gates).sum();
        let naive_max = survey.iter().map(|c| c.naive_gates).max().unwrap_or(0);
        let paar_max = survey.iter().map(|c| c.paar_gates).max().unwrap_or(0);
        let depth_max = survey.iter().map(|c| c.depth).max().unwrap_or(0);
        let saved = 100.0 * (naive_sum - paar_sum) as f64 / naive_sum.max(1) as f64;
        t.row_owned(vec![
            m.to_string(),
            count.to_string(),
            format!("{:.2}", naive_sum as f64 / count as f64),
            naive_max.to_string(),
            format!("{:.2}", paar_sum as f64 / count as f64),
            paar_max.to_string(),
            format!("{saved:.1}%"),
            depth_max.to_string(),
        ]);
    }
    t.print();

    // The paper's own multiplier: ·2 in GF(2⁴) with p = 1 + z + z⁴.
    let field = Field::new(4, 0b1_0011).expect("paper field");
    let mut t2 = Table::new(
        "E7b: the paper's WOM datapath constants over GF(2⁴), p = 1+z+z⁴",
        &["constant", "naive XOR", "CSE XOR", "depth"],
    );
    for c in 2..16u64 {
        let matrix = mult_synth::mult_matrix(&field, c);
        let net = mult_synth::synthesize(&matrix, SynthesisStrategy::Paar);
        assert!(net.equivalent_to(&matrix), "synthesis must be exact");
        t2.row_owned(vec![
            c.to_string(),
            mult_synth::naive_gate_count(&matrix).to_string(),
            net.gate_count().to_string(),
            net.depth().to_string(),
        ]);
    }
    t2.print();
    println!(
        "\nverdict: multiplication by the paper's constant 2 costs a single XOR\n\
         gate beyond wiring; CSE saves ~30-40% on average for m ≥ 5 —\n\
         the 'only XOR-gates' claim C5 is exact, with machine-verified networks."
    );
}
