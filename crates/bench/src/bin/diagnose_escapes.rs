//! Lists every fault instance escaping a candidate PRT scheme — the
//! debugging companion of `search_tdb`.
//!
//! Usage: `cargo run --release -p prt-bench --bin diagnose_escapes [n]`

use prt_core::PrtScheme;
use prt_gf::Field;
use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
use prt_sim::Campaign;

fn main() {
    let ns: Vec<usize> = {
        // Malformed sizes are a usage error, not silently skipped runs.
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|s| {
                s.parse().unwrap_or_else(|e| {
                    prt_bench::die(format!("invalid array-size argument '{s}': {e}"))
                })
            })
            .collect();
        if args.is_empty() {
            vec![9, 10, 11]
        } else {
            args
        }
    };
    for (label, mk) in [
        ("standard3", PrtScheme::standard3 as fn(Field) -> Result<PrtScheme, prt_core::PrtError>),
        ("standard4", PrtScheme::standard4 as fn(Field) -> Result<PrtScheme, prt_core::PrtError>),
    ] {
        // Bit-oriented check.
        for &n in &ns {
            let field = Field::new(1, 0b11).expect("GF(2)");
            let scheme = mk(field).expect("scheme");
            let u = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
            report(&scheme, &u, &format!("{label} BOM n={n}"));
        }
        // Word-oriented check with intra-word faults.
        for &n in &ns {
            let field = Field::new(4, 0b1_0011).expect("GF(16)");
            let scheme = mk(field).expect("scheme");
            let spec = UniverseSpec {
                coupling_radius: Some(3),
                intra_word: true,
                ..UniverseSpec::paper_claim()
            };
            let u = FaultUniverse::enumerate(Geometry::wom(n, 4).expect("geom"), &spec);
            report(&scheme, &u, &format!("{label} WOM m=4 n={n}"));
        }
    }
    full_coverage_growth(&ns);
}

fn full_coverage_growth(ns: &[usize]) {
    for &n in ns {
        let field = Field::new(1, 0b11).expect("GF(2)");
        match PrtScheme::full_coverage(field, Geometry::bom(n)) {
            Ok((s, usize_)) => println!(
                "full_coverage BOM n={n}: {} iterations (universe {usize_})",
                s.iterations().len()
            ),
            Err(e) => println!("full_coverage BOM n={n}: FAILED: {e}"),
        }
        let field = Field::new(4, 0b1_0011).expect("GF(16)");
        match PrtScheme::full_coverage(field, Geometry::wom(n, 4).expect("geom")) {
            Ok((s, usize_)) => println!(
                "full_coverage WOM n={n}: {} iterations (universe {usize_})",
                s.iterations().len()
            ),
            Err(e) => println!("full_coverage WOM n={n}: FAILED: {e}"),
        }
    }
}

fn report(scheme: &PrtScheme, u: &FaultUniverse, label: &str) {
    let escapes = Campaign::new(u, scheme).escapes();
    for &i in escapes.iter().take(25) {
        println!("  escape: {}", u.faults()[i]);
    }
    println!("{label}: escapes {}/{}", escapes.len(), u.len());
}
