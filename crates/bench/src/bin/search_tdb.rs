//! TDB-schedule derivation tool (ablation `ablate_tdb`).
//!
//! Exhaustively searches pre-read iteration schedules — seed `(s0, s1)` ×
//! affine complement bit × trajectory per iteration — for full coverage of
//! the paper-claim fault universe on several memory sizes simultaneously.
//! Completeness checking is fail-fast (hardness-ordered instances), and the
//! first iteration is pinned to `⇑ init(0,1)` (the first iteration runs
//! plain, so its role is symmetric under relabeling).
//!
//! The schedules hard-coded in `PrtScheme::standard3`/`standard4`/the full
//! scheme were derived with this tool.
//!
//! Usage: `cargo run --release -p prt-bench --bin search_tdb [max_iters]`

use prt_core::scheme::{IterationSpec, PrtScheme};
use prt_core::Trajectory;
use prt_gf::Field;
use prt_ram::{FaultKind, FaultUniverse, Geometry, UniverseSpec};
use prt_sim::{Campaign, Parallelism};

/// Hardness-ordered fault instances: the classes that escape most schemes
/// come first so fail-fast pruning triggers early.
fn ordered_instances(n: usize) -> (Geometry, Vec<FaultKind>) {
    let geom = Geometry::bom(n);
    let u = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    let mut faults: Vec<FaultKind> = u.faults().to_vec();
    let rank = |f: &FaultKind| match f.mnemonic() {
        "CFid" => 0,
        "CFin" => 1,
        "CFst" => 2,
        "AF" => 3,
        "TF" => 4,
        _ => 5,
    };
    faults.sort_by_key(rank);
    (geom, faults)
}

fn first_escape(scheme: &PrtScheme, sets: &[(Geometry, Vec<FaultKind>)]) -> Option<FaultKind> {
    // Sequential campaigns: each candidate schedule is checked fail-fast
    // against hardness-ordered instances, and the odometer visits millions
    // of candidates — pooled memories matter here, thread fan-out would
    // not amortise per candidate.
    for (geom, faults) in sets {
        let found = Campaign::over(*geom, faults, scheme)
            .with_parallelism(Parallelism::Sequential)
            .first_escape();
        if let Some(i) = found {
            return Some(faults[i].clone());
        }
    }
    None
}

fn label(spec: &IterationSpec) -> String {
    format!("{}({},{})e{}", spec.trajectory.label(), spec.init[0], spec.init[1], spec.affine)
}

fn main() {
    let max_iters: usize = prt_bench::arg_or(1, 5, "max-iterations");

    let field = Field::new(1, 0b11).expect("GF(2)");
    let sets: Vec<(Geometry, Vec<FaultKind>)> =
        [9usize, 10, 11].iter().map(|&n| ordered_instances(n)).collect();

    // Candidate pool: seed × affine × trajectory.
    let mut pool: Vec<IterationSpec> = Vec::new();
    for s in [[0u64, 1], [1, 0], [1, 1], [0, 0]] {
        for e in [0u64, 1] {
            for traj in [Trajectory::Up, Trajectory::Down] {
                pool.push(IterationSpec { init: s.to_vec(), affine: e, trajectory: traj });
            }
        }
    }
    let first = IterationSpec::up(vec![0, 1]);
    println!("pool: {} candidate iterations (first pinned to ⇑(0,1)e0)", pool.len());

    for iters in 3..=max_iters {
        let free = iters - 1;
        let mut idx = vec![0usize; free];
        let mut tried = 0u64;
        let mut found = false;
        'odometer: loop {
            let mut specs = vec![first.clone()];
            specs.extend(idx.iter().map(|&i| pool[i].clone()));
            if let Ok(s) = PrtScheme::new(field.clone(), &[1, 1, 1], specs.clone()) {
                let s = s.with_preread(true).with_final_readback(true);
                tried += 1;
                if first_escape(&s, &sets).is_none() {
                    let names: Vec<String> = specs.iter().map(label).collect();
                    println!(
                        "iters={iters}: COMPLETE after {tried} tries: [{}]",
                        names.join(" | ")
                    );
                    found = true;
                    break 'odometer;
                }
            }
            let mut pos = free;
            loop {
                if pos == 0 {
                    break 'odometer;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < pool.len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
        if !found {
            println!("iters={iters}: no complete schedule ({tried} tried)");
        } else {
            break;
        }
    }
}
