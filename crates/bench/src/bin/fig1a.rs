//! **Experiment E1 — Figure 1a**: a π-test iteration on a bit-oriented
//! memory.
//!
//! Reproduces the paper's Figure 1a: the automaton `g(x) = 1 + x + x²`
//! seeded with `Init = (0, 1)` writes the period-3 test-data background
//! `0 1 1 | 0 1 1 | …` across the array, and the pseudo-ring closes
//! (`Fin = Init`) exactly when `period | (n − k)`.
//!
//! Run: `cargo run --release -p prt-bench --bin fig1a`

use prt_bench::Table;
use prt_core::PiTest;
use prt_ram::{Geometry, Ram};

fn main() {
    let pi = PiTest::figure_1a().expect("figure 1a automaton");
    println!("Figure 1a automaton: g(x) = 1 + x + x², Init = (0, 1), GF(2)");
    println!("period = {}\n", pi.period().expect("period"));

    // The memory contents after one iteration (the figure's cell row).
    let n = 11; // n − k = 9 ≡ 0 (mod 3): the ring closes
    let mut ram = Ram::new(Geometry::bom(n));
    let res = pi.run(&mut ram).expect("run");
    let cells: Vec<String> = (0..n).map(|c| ram.peek(c).to_string()).collect();
    println!("memory after π-iteration (n = {n}): {}", cells.join(" "));
    println!(
        "Fin = {:?}  Fin* = {:?}  Init = {:?}  → fault-free: {}, ring closed: {}",
        res.fin(),
        res.fin_star(),
        pi.init(),
        !res.detected(),
        res.fin() == pi.init()
    );
    println!("ops = {} (= 3n − 2 = {})\n", res.ops(), 3 * n - 2);

    // Ring-closure sweep, as the paper's closure condition predicts.
    let mut t = Table::new(
        "pseudo-ring closure vs memory size (period 3, k = 2)",
        &["n", "n−k mod 3", "Fin", "closes", "predicted"],
    );
    for n in 4..=13usize {
        let mut ram = Ram::new(Geometry::bom(n));
        let res = pi.run(&mut ram).expect("run");
        let closes = res.fin() == pi.init();
        let predicted = pi.ring_closes(n).expect("period");
        assert_eq!(closes, predicted, "closure prediction must match");
        t.row_owned(vec![
            n.to_string(),
            ((n - 2) % 3).to_string(),
            format!("{:?}", res.fin()),
            closes.to_string(),
            predicted.to_string(),
        ]);
    }
    t.print();
}
