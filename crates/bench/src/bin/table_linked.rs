//! **Experiment E11 (extension)** — linked coupling faults.
//!
//! Two coupling faults sharing a victim can mask each other inside one
//! March element (double inversion restores the victim before its next
//! read) — the classical limitation of March C- that motivated March A/B.
//! This table measures all ordered linked CFin pairs on a small BOM:
//! March baselines vs the pre-read PRT schedule, whose stale-value check
//! observes the *intermediate* corruption that in-element masking hides.
//!
//! Run: `cargo run --release -p prt-bench --bin table_linked [n]`

use prt_bench::{pct, Table};
use prt_core::PrtScheme;
use prt_gf::Field;
use prt_march::{library, Executor};
use prt_ram::{CouplingTrigger, FaultKind, Geometry, Ram};

fn linked_cfin_pairs(n: usize) -> Vec<[FaultKind; 2]> {
    let dirs = [CouplingTrigger::Rise, CouplingTrigger::Fall];
    let mut out = Vec::new();
    for v in 0..n {
        for a1 in 0..n {
            for a2 in (a1 + 1)..n {
                if a1 == v || a2 == v {
                    continue;
                }
                for d1 in dirs {
                    for d2 in dirs {
                        out.push([
                            FaultKind::CouplingInversion {
                                agg_cell: a1,
                                agg_bit: 0,
                                victim_cell: v,
                                victim_bit: 0,
                                trigger: d1,
                            },
                            FaultKind::CouplingInversion {
                                agg_cell: a2,
                                agg_bit: 0,
                                victim_cell: v,
                                victim_bit: 0,
                                trigger: d2,
                            },
                        ]);
                    }
                }
            }
        }
    }
    out
}

fn main() {
    let n: usize = prt_bench::arg_or(1, 8, "array-size");
    let pairs = linked_cfin_pairs(n);
    println!("{} linked CFin pairs on BOM n={n}\n", pairs.len());

    let mut t = Table::new("E11: linked CFin-pair detection", &["test", "detected", "coverage"]);
    let ex = Executor::new().stop_at_first_mismatch();
    for test in [
        library::mats_plus(),
        library::march_c_minus(),
        library::march_a(),
        library::march_b(),
        library::march_ss(),
    ] {
        let mut detected = 0usize;
        for pair in &pairs {
            let mut ram = Ram::new(Geometry::bom(n));
            for f in pair {
                ram.inject(f.clone()).expect("valid");
            }
            if ex.run(&test, &mut ram).detected() {
                detected += 1;
            }
        }
        t.row_owned(vec![
            test.name().to_string(),
            format!("{detected}/{}", pairs.len()),
            pct(100.0 * detected as f64 / pairs.len() as f64),
        ]);
    }
    for (label, scheme) in [
        (
            "PRT standard3 (pre-read)",
            PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme"),
        ),
        (
            "PRT full ×5 (pre-read)",
            PrtScheme::full_coverage(Field::new(1, 0b11).expect("GF(2)"), Geometry::bom(n))
                .expect("synthesis")
                .0,
        ),
    ] {
        let mut detected = 0usize;
        for pair in &pairs {
            let mut ram = Ram::new(Geometry::bom(n));
            for f in pair {
                ram.inject(f.clone()).expect("valid");
            }
            if scheme.run(&mut ram).map(|r| r.detected()).unwrap_or(false) {
                detected += 1;
            }
        }
        t.row_owned(vec![
            label.to_string(),
            format!("{detected}/{}", pairs.len()),
            pct(100.0 * detected as f64 / pairs.len() as f64),
        ]);
    }
    t.print();
    println!(
        "\nverdict: in-element double inversion masks a third of linked pairs from\n\
         every March variant; the π-test's pre-read observes stale corruption\n\
         between iterations and recovers a large part of that gap — an advantage\n\
         of PRT the paper did not measure."
    );
}
