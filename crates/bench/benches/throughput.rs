//! Criterion micro-benchmarks: simulator and algorithm throughput.
//!
//! These complement the experiment binaries (which measure *operation
//! counts*, the paper's metric) with wall-clock throughput of the
//! simulator itself: π-iterations vs March passes per second, field
//! multiplication, LFSR stepping and multiplier synthesis.
//!
//! Run: `cargo bench -p prt-bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prt_core::{PiTest, PrtScheme};
use prt_gf::{mult_synth, Field, SynthesisStrategy};
use prt_lfsr::WordLfsr;
use prt_march::{library, Executor};
use prt_ram::{Geometry, Ram};

fn bench_pi_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("pi_iteration");
    for n in [1024usize, 16384] {
        group.throughput(Throughput::Elements(n as u64));
        let pi = PiTest::figure_1a().expect("automaton");
        group.bench_with_input(BenchmarkId::new("bom_single_port", n), &n, |b, &n| {
            b.iter(|| {
                let mut ram = Ram::new(Geometry::bom(n));
                pi.run(&mut ram).expect("run").detected()
            })
        });
        let wom = PiTest::figure_1b().expect("automaton");
        group.bench_with_input(BenchmarkId::new("wom_single_port", n), &n, |b, &n| {
            b.iter(|| {
                let mut ram = Ram::new(Geometry::wom(n, 4).expect("geometry"));
                wom.run(&mut ram).expect("run").detected()
            })
        });
        group.bench_with_input(BenchmarkId::new("bom_dual_port", n), &n, |b, &n| {
            b.iter(|| {
                let mut ram = Ram::with_ports(Geometry::bom(n), 2).expect("ports");
                pi.run_dual_port(&mut ram).expect("run").detected()
            })
        });
    }
    group.finish();
}

fn bench_schemes_vs_march(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete_tests");
    let n = 4096usize;
    group.throughput(Throughput::Elements(n as u64));
    let scheme = PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme");
    group.bench_function("prt_standard3", |b| {
        b.iter(|| {
            let mut ram = Ram::new(Geometry::bom(n));
            scheme.run(&mut ram).expect("run").detected()
        })
    });
    let march = library::march_c_minus();
    let ex = Executor::new();
    group.bench_function("march_c_minus", |b| {
        b.iter(|| {
            let mut ram = Ram::new(Geometry::bom(n));
            ex.run(&march, &mut ram).detected()
        })
    });
    let ss = library::march_ss();
    group.bench_function("march_ss", |b| {
        b.iter(|| {
            let mut ram = Ram::new(Geometry::bom(n));
            ex.run(&ss, &mut ram).detected()
        })
    });
    group.finish();
}

fn bench_field_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf");
    let f16 = Field::new(4, 0b1_0011).expect("GF(16)");
    group.bench_function("mul_gf16_table", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = f16.mul(x, 7) | 1;
            x
        })
    });
    let f24 = Field::gf(24).expect("GF(2^24)");
    group.bench_function("mul_gf2_24_clmul", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = f24.mul(x, 0xABCDE) | 1;
            x
        })
    });
    group.bench_function("inv_gf16", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = f16.inv(x).expect("non-zero") | 1;
            x
        })
    });
    group.finish();
}

fn bench_lfsr(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfsr");
    let field = Field::new(4, 0b1_0011).expect("GF(16)");
    group.bench_function("word_lfsr_step", |b| {
        let mut l = WordLfsr::from_feedback(field.clone(), &[1, 2, 2], &[0, 1]).expect("lfsr");
        b.iter(|| l.step())
    });
    group.bench_function("word_lfsr_state_after_1e9", |b| {
        let l = WordLfsr::from_feedback(field.clone(), &[1, 2, 2], &[0, 1]).expect("lfsr");
        b.iter(|| l.state_after(1_000_000_000))
    });
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mult_synth");
    let f256 = Field::gf(8).expect("GF(256)");
    group.bench_function("paar_gf256_constant", |b| {
        b.iter(|| mult_synth::for_constant(&f256, 0xB5, SynthesisStrategy::Paar).gate_count())
    });
    group.bench_function("naive_gf256_constant", |b| {
        b.iter(|| mult_synth::for_constant(&f256, 0xB5, SynthesisStrategy::Naive).gate_count())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pi_iteration,
    bench_schemes_vs_march,
    bench_field_ops,
    bench_lfsr,
    bench_synthesis
);
criterion_main!(benches);
