//! Criterion group measuring campaign-engine throughput (faults/second):
//! the seed's per-fault-allocation loop vs the pooled sequential engine vs
//! the compiled-program path vs the parallel fan-out, for both a March
//! runner (cheap per fault, early exit) and a PRT scheme runner (heavier
//! per fault).
//!
//! Run: `cargo bench -p prt-bench --bench coverage_campaign`
//!
//! The `compiled_*` rows lower the test to the `prt_ram::prog` IR **once
//! per campaign** (the compile cost is measured inside the loop — it is
//! three orders of magnitude below the sweep) and run the allocation-free
//! interpreter per trial with lane batching disabled; `pooled_sequential`
//! re-interprets the high-level notation per trial; the `batch_*` rows
//! run the lane-sliced engine (up to 64 fault trials per interpreter
//! pass, scalar remainder for the unbatchable families). All variants
//! produce bit-identical verdict vectors (asserted in the prt-sim,
//! prt-core and integration property tests); this bench quantifies the
//! per-trial interpretation tax and the lane-packing win. Parallel gains
//! scale with core count — on a single-core host the `*_parallel` rows
//! collapse to their sequential numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prt_core::PrtScheme;
use prt_diag::{FaultDictionary, Localizer};
use prt_gf::{Field, Poly2};
use prt_march::{coverage, coverage::MarchRunner, library, Executor};
use prt_ram::{FaultUniverse, Geometry, Ram, UniverseSpec};
use prt_sim::{Campaign, Parallelism};

fn bench_march_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_march_c_minus");
    let test = library::march_c_minus();
    let ex = Executor::new().stop_at_first_mismatch();
    for n in [16usize, 32] {
        let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        group.throughput(Throughput::Elements(universe.len() as u64));
        group.bench_with_input(BenchmarkId::new("seed_alloc_per_fault", n), &universe, |b, u| {
            b.iter(|| Campaign::new(u, MarchRunner::new(&test, &ex)).detections_reference())
        });
        group.bench_with_input(BenchmarkId::new("pooled_sequential", n), &universe, |b, u| {
            b.iter(|| {
                Campaign::new(u, MarchRunner::new(&test, &ex))
                    .with_parallelism(Parallelism::Sequential)
                    .detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled_sequential", n), &universe, |b, u| {
            b.iter(|| {
                let program = ex.compile(&test, u.geometry());
                Campaign::new(u, &program)
                    .with_lane_batching(false)
                    .with_parallelism(Parallelism::Sequential)
                    .detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_auto", n), &universe, |b, u| {
            b.iter(|| {
                Campaign::new(u, MarchRunner::new(&test, &ex))
                    .with_parallelism(Parallelism::Auto)
                    .detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled_parallel", n), &universe, |b, u| {
            b.iter(|| {
                let program = ex.compile(&test, u.geometry());
                Campaign::new(u, &program)
                    .with_lane_batching(false)
                    .with_parallelism(Parallelism::Auto)
                    .detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch_sequential", n), &universe, |b, u| {
            b.iter(|| {
                let program = ex.compile(&test, u.geometry());
                Campaign::new(u, &program).with_parallelism(Parallelism::Sequential).detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch_parallel", n), &universe, |b, u| {
            b.iter(|| {
                let program = ex.compile(&test, u.geometry());
                Campaign::new(u, &program).with_parallelism(Parallelism::Auto).detections()
            })
        });
    }
    group.finish();
}

fn bench_scheme_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_prt_standard3");
    let scheme = PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme");
    let n = 24usize;
    let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
    group.throughput(Throughput::Elements(universe.len() as u64));
    group.bench_with_input(BenchmarkId::new("seed_alloc_per_fault", n), &universe, |b, u| {
        b.iter(|| Campaign::new(u, &scheme).detections_reference())
    });
    group.bench_with_input(BenchmarkId::new("pooled_sequential", n), &universe, |b, u| {
        b.iter(|| Campaign::new(u, &scheme).with_parallelism(Parallelism::Sequential).detections())
    });
    group.bench_with_input(BenchmarkId::new("compiled_sequential", n), &universe, |b, u| {
        b.iter(|| {
            let program = scheme.compile(u.geometry()).expect("compile");
            Campaign::new(u, &program)
                .with_lane_batching(false)
                .with_parallelism(Parallelism::Sequential)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("parallel_auto", n), &universe, |b, u| {
        b.iter(|| Campaign::new(u, &scheme).with_parallelism(Parallelism::Auto).detections())
    });
    group.bench_with_input(BenchmarkId::new("compiled_parallel", n), &universe, |b, u| {
        b.iter(|| {
            let program = scheme.compile(u.geometry()).expect("compile");
            Campaign::new(u, &program)
                .with_lane_batching(false)
                .with_parallelism(Parallelism::Auto)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("batch_sequential", n), &universe, |b, u| {
        b.iter(|| {
            let program = scheme.compile(u.geometry()).expect("compile");
            Campaign::new(u, &program).with_parallelism(Parallelism::Sequential).detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("batch_parallel", n), &universe, |b, u| {
        b.iter(|| {
            let program = scheme.compile(u.geometry()).expect("compile");
            Campaign::new(u, &program).with_parallelism(Parallelism::Auto).detections()
        })
    });
    group.finish();
}

fn bench_multi_background(c: &mut Criterion) {
    // Word-oriented multi-background sweep: the per-fault early exit across
    // backgrounds is the dominant win here.
    let mut group = c.benchmark_group("campaign_march_multibg_wom");
    let test = library::march_c_minus();
    let ex = Executor::new().stop_at_first_mismatch();
    let bgs = prt_march::coverage::standard_backgrounds(4);
    let spec =
        UniverseSpec { coupling_radius: Some(3), intra_word: true, ..UniverseSpec::paper_claim() };
    let n = 12usize;
    let universe = FaultUniverse::enumerate(Geometry::wom(n, 4).expect("geometry"), &spec);
    group.throughput(Throughput::Elements(universe.len() as u64));
    group.bench_with_input(BenchmarkId::new("seed_alloc_per_fault", n), &universe, |b, u| {
        b.iter(|| {
            Campaign::new(u, MarchRunner::new(&test, &ex))
                .with_backgrounds(&bgs)
                .detections_reference()
        })
    });
    group.bench_with_input(BenchmarkId::new("pooled_sequential", n), &universe, |b, u| {
        b.iter(|| {
            Campaign::new(u, MarchRunner::new(&test, &ex))
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Sequential)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("compiled_sequential", n), &universe, |b, u| {
        b.iter(|| {
            let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
            Campaign::new(u, &bank)
                .with_backgrounds(&bgs)
                .with_lane_batching(false)
                .with_parallelism(Parallelism::Sequential)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("parallel_auto", n), &universe, |b, u| {
        b.iter(|| {
            Campaign::new(u, MarchRunner::new(&test, &ex))
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Auto)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("compiled_parallel", n), &universe, |b, u| {
        b.iter(|| {
            let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
            Campaign::new(u, &bank)
                .with_backgrounds(&bgs)
                .with_lane_batching(false)
                .with_parallelism(Parallelism::Auto)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("batch_sequential", n), &universe, |b, u| {
        b.iter(|| {
            let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
            Campaign::new(u, &bank)
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Sequential)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("batch_parallel", n), &universe, |b, u| {
        b.iter(|| {
            let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
            Campaign::new(u, &bank)
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Auto)
                .detections()
        })
    });
    group.finish();
}

fn bench_diagnosis(c: &mut Criterion) {
    // The diagnosis workload: dictionary building is a signature-collecting
    // campaign (one compiled-program pass + MISR per fault); localization
    // is the adaptive probe loop over a failing device.
    let mut group = c.benchmark_group("campaign_diagnosis");
    let n = 16usize;
    let geom = Geometry::bom(n);
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    let program = Executor::new().compile(&library::march_diag(), geom);
    let poly = Poly2::from_bits(0b1_0001_1011);
    group.throughput(Throughput::Elements(universe.len() as u64));
    group.bench_with_input(BenchmarkId::new("dictionary_build", n), &universe, |b, u| {
        b.iter(|| FaultDictionary::build(u, &program, poly, Parallelism::Auto).expect("build"))
    });
    group.bench_with_input(BenchmarkId::new("dictionary_build_seq", n), &universe, |b, u| {
        b.iter(|| {
            FaultDictionary::build(u, &program, poly, Parallelism::Sequential).expect("build")
        })
    });
    let dict = FaultDictionary::build(&universe, &program, poly, Parallelism::Auto).expect("build");
    let localizer = Localizer::new(library::march_diag(), geom).with_dictionary(&dict);
    let sample: Vec<usize> =
        (0..universe.len()).step_by(universe.len().div_ceil(32).max(1)).collect();
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_with_input(BenchmarkId::new("localize", n), &sample, |b, sample| {
        b.iter(|| {
            for &i in sample {
                let mut ram = Ram::new(geom);
                ram.inject(universe.faults()[i].clone()).expect("valid");
                let _ = localizer.diagnose(&mut ram).expect("diagnose");
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_march_campaign,
    bench_scheme_campaign,
    bench_multi_background,
    bench_diagnosis
);
criterion_main!(benches);
