//! Criterion group measuring campaign-engine throughput (faults/second):
//! the seed's per-fault-allocation loop vs the pooled sequential engine vs
//! the compiled-program path vs the parallel fan-out, for both a March
//! runner (cheap per fault, early exit) and a PRT scheme runner (heavier
//! per fault).
//!
//! Run: `cargo bench -p prt-bench --bench coverage_campaign`
//!
//! The `compiled_*` rows lower the test to the `prt_ram::prog` IR **once
//! per campaign** (the compile cost is measured inside the loop — it is
//! three orders of magnitude below the sweep) and run the allocation-free
//! interpreter per trial; `pooled_sequential` re-interprets the high-level
//! notation per trial. All variants produce bit-identical verdict vectors
//! (asserted in the prt-sim, prt-core and integration property tests);
//! this bench quantifies the per-trial interpretation tax. Parallel gains
//! scale with core count — on a single-core host the `*_parallel` rows
//! collapse to their sequential numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prt_core::PrtScheme;
use prt_gf::Field;
use prt_march::{coverage, coverage::MarchRunner, library, Executor};
use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
use prt_sim::{Campaign, Parallelism};

fn bench_march_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_march_c_minus");
    let test = library::march_c_minus();
    let ex = Executor::new().stop_at_first_mismatch();
    for n in [16usize, 32] {
        let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        group.throughput(Throughput::Elements(universe.len() as u64));
        group.bench_with_input(BenchmarkId::new("seed_alloc_per_fault", n), &universe, |b, u| {
            b.iter(|| Campaign::new(u, MarchRunner::new(&test, &ex)).detections_reference())
        });
        group.bench_with_input(BenchmarkId::new("pooled_sequential", n), &universe, |b, u| {
            b.iter(|| {
                Campaign::new(u, MarchRunner::new(&test, &ex))
                    .with_parallelism(Parallelism::Sequential)
                    .detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled_sequential", n), &universe, |b, u| {
            b.iter(|| {
                let program = ex.compile(&test, u.geometry());
                Campaign::new(u, &program).with_parallelism(Parallelism::Sequential).detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_auto", n), &universe, |b, u| {
            b.iter(|| {
                Campaign::new(u, MarchRunner::new(&test, &ex))
                    .with_parallelism(Parallelism::Auto)
                    .detections()
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled_parallel", n), &universe, |b, u| {
            b.iter(|| {
                let program = ex.compile(&test, u.geometry());
                Campaign::new(u, &program).with_parallelism(Parallelism::Auto).detections()
            })
        });
    }
    group.finish();
}

fn bench_scheme_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_prt_standard3");
    let scheme = PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme");
    let n = 24usize;
    let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
    group.throughput(Throughput::Elements(universe.len() as u64));
    group.bench_with_input(BenchmarkId::new("seed_alloc_per_fault", n), &universe, |b, u| {
        b.iter(|| Campaign::new(u, &scheme).detections_reference())
    });
    group.bench_with_input(BenchmarkId::new("pooled_sequential", n), &universe, |b, u| {
        b.iter(|| Campaign::new(u, &scheme).with_parallelism(Parallelism::Sequential).detections())
    });
    group.bench_with_input(BenchmarkId::new("compiled_sequential", n), &universe, |b, u| {
        b.iter(|| {
            let program = scheme.compile(u.geometry()).expect("compile");
            Campaign::new(u, &program).with_parallelism(Parallelism::Sequential).detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("parallel_auto", n), &universe, |b, u| {
        b.iter(|| Campaign::new(u, &scheme).with_parallelism(Parallelism::Auto).detections())
    });
    group.bench_with_input(BenchmarkId::new("compiled_parallel", n), &universe, |b, u| {
        b.iter(|| {
            let program = scheme.compile(u.geometry()).expect("compile");
            Campaign::new(u, &program).with_parallelism(Parallelism::Auto).detections()
        })
    });
    group.finish();
}

fn bench_multi_background(c: &mut Criterion) {
    // Word-oriented multi-background sweep: the per-fault early exit across
    // backgrounds is the dominant win here.
    let mut group = c.benchmark_group("campaign_march_multibg_wom");
    let test = library::march_c_minus();
    let ex = Executor::new().stop_at_first_mismatch();
    let bgs = prt_march::coverage::standard_backgrounds(4);
    let spec =
        UniverseSpec { coupling_radius: Some(3), intra_word: true, ..UniverseSpec::paper_claim() };
    let n = 12usize;
    let universe = FaultUniverse::enumerate(Geometry::wom(n, 4).expect("geometry"), &spec);
    group.throughput(Throughput::Elements(universe.len() as u64));
    group.bench_with_input(BenchmarkId::new("seed_alloc_per_fault", n), &universe, |b, u| {
        b.iter(|| {
            Campaign::new(u, MarchRunner::new(&test, &ex))
                .with_backgrounds(&bgs)
                .detections_reference()
        })
    });
    group.bench_with_input(BenchmarkId::new("pooled_sequential", n), &universe, |b, u| {
        b.iter(|| {
            Campaign::new(u, MarchRunner::new(&test, &ex))
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Sequential)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("compiled_sequential", n), &universe, |b, u| {
        b.iter(|| {
            let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
            Campaign::new(u, &bank)
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Sequential)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("parallel_auto", n), &universe, |b, u| {
        b.iter(|| {
            Campaign::new(u, MarchRunner::new(&test, &ex))
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Auto)
                .detections()
        })
    });
    group.bench_with_input(BenchmarkId::new("compiled_parallel", n), &universe, |b, u| {
        b.iter(|| {
            let bank = coverage::compile_bank(&test, u.geometry(), &ex, &bgs);
            Campaign::new(u, &bank)
                .with_backgrounds(&bgs)
                .with_parallelism(Parallelism::Auto)
                .detections()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_march_campaign, bench_scheme_campaign, bench_multi_background);
criterion_main!(benches);
