//! Property-based tests for the Galois-field substrate.

use proptest::prelude::*;
use prt_gf::{mult_synth, BitMatrix, Field, Poly2, SynthesisStrategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Polynomial division is exact: a = q·b + r with deg r < deg b.
    #[test]
    fn poly2_div_rem_roundtrip(a in 0u128..(1 << 40), b in 1u128..(1 << 20)) {
        let (pa, pb) = (Poly2::from_bits(a), Poly2::from_bits(b));
        let (q, r) = pa.div_rem(pb);
        prop_assert_eq!(q.mul(pb).add(r), pa);
        prop_assert!(r.degree() < pb.degree());
    }

    /// Carry-less multiplication is commutative and distributes over XOR.
    #[test]
    fn poly2_ring_laws(a in 0u128..(1 << 20), b in 0u128..(1 << 20), c in 0u128..(1 << 20)) {
        let (pa, pb, pc) = (Poly2::from_bits(a), Poly2::from_bits(b), Poly2::from_bits(c));
        prop_assert_eq!(pa.mul(pb), pb.mul(pa));
        prop_assert_eq!(pa.mul(pb.add(pc)), pa.mul(pb).add(pa.mul(pc)));
    }

    /// gcd divides both operands and is stable under operand order.
    #[test]
    fn poly2_gcd_divides(a in 1u128..(1 << 24), b in 1u128..(1 << 24)) {
        let (pa, pb) = (Poly2::from_bits(a), Poly2::from_bits(b));
        let g = pa.gcd(pb);
        prop_assert_eq!(g, pb.gcd(pa));
        prop_assert!(pa.rem(g).is_zero());
        prop_assert!(pb.rem(g).is_zero());
    }

    /// Field laws hold for random elements across several widths.
    #[test]
    fn field_laws_random_elements(m in 2u32..12, raw in any::<[u64; 3]>()) {
        let f = Field::gf(m).unwrap();
        let mask = f.mask();
        let (a, b, c) = (raw[0] & mask, raw[1] & mask, raw[2] & mask);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
        }
        // Frobenius: squaring is additive.
        prop_assert_eq!(f.mul(f.add(a, b), f.add(a, b)), f.add(f.mul(a, a), f.mul(b, b)));
    }

    /// Factorisation recomposes and factors are irreducible.
    #[test]
    fn factorisation_roundtrip(bits in 2u128..(1 << 14)) {
        let f = Poly2::from_bits(bits);
        prop_assume!(f.degree() >= 1);
        let fs = prt_gf::factor_poly::factor(f);
        prop_assert_eq!(prt_gf::factor_poly::expand(&fs), f);
        for pf in &fs {
            prop_assert!(pf.poly.is_irreducible());
        }
    }

    /// Synthesized multiplier networks are exact for random constants.
    #[test]
    fn multiplier_network_exact(m in 2u32..9, c in any::<u64>()) {
        let f = Field::gf(m).unwrap();
        let c = c & f.mask();
        let net = mult_synth::for_constant(&f, c, SynthesisStrategy::Paar);
        for probe in [0u64, 1, f.mask(), c, c.wrapping_mul(3) & f.mask()] {
            prop_assert_eq!(net.eval(probe as u128) as u64, f.mul(c, probe));
        }
    }

    /// Matrix inverse really inverts for random invertible matrices.
    #[test]
    fn matrix_inverse_roundtrip(rows in prop::collection::vec(any::<u64>(), 6)) {
        let rows: Vec<u128> = rows.iter().map(|&r| (r & 0x3F) as u128).collect();
        let m = BitMatrix::from_rows(rows, 6);
        if let Ok(inv) = m.inverse() {
            prop_assert_eq!(m.mul(&inv).unwrap(), BitMatrix::identity(6));
            prop_assert_eq!(inv.mul(&m).unwrap(), BitMatrix::identity(6));
        } else {
            prop_assert!(m.rank() < 6);
        }
    }

    /// Trace is GF(2)-linear for random fields.
    #[test]
    fn trace_linearity(m in 2u32..10, a in any::<u64>(), b in any::<u64>()) {
        let f = Field::gf(m).unwrap();
        let (a, b) = (a & f.mask(), b & f.mask());
        prop_assert_eq!(f.trace(a ^ b), f.trace(a) ^ f.trace(b));
    }
}
