use std::error::Error;
use std::fmt;

/// Errors produced by Galois-field constructions and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GfError {
    /// The requested extension degree `m` is outside the supported range.
    UnsupportedDegree {
        /// The degree that was requested.
        m: u32,
        /// Largest supported degree.
        max: u32,
    },
    /// The supplied modulus polynomial does not have the expected degree.
    WrongModulusDegree {
        /// Degree the modulus actually has.
        actual: i32,
        /// Degree the field requires.
        expected: u32,
    },
    /// The supplied modulus polynomial is reducible over GF(2).
    ReducibleModulus {
        /// The offending polynomial (bit `i` = coefficient of `z^i`).
        poly: u64,
    },
    /// The element is not a member of the field (too many bits).
    NotAnElement {
        /// The offending value.
        value: u64,
        /// Field size `2^m`.
        size: u128,
    },
    /// Division by zero / inversion of zero.
    DivisionByZero,
    /// A matrix operation received incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the two shapes involved.
        context: &'static str,
    },
    /// The matrix is singular and cannot be inverted.
    SingularMatrix,
    /// A polynomial coefficient lies outside the coefficient field.
    CoefficientOutOfField {
        /// The offending coefficient.
        value: u64,
    },
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedDegree { m, max } => {
                write!(f, "extension degree {m} unsupported (max {max})")
            }
            GfError::WrongModulusDegree { actual, expected } => {
                write!(f, "modulus has degree {actual}, expected {expected}")
            }
            GfError::ReducibleModulus { poly } => {
                write!(f, "modulus {poly:#x} is reducible over GF(2)")
            }
            GfError::NotAnElement { value, size } => {
                write!(f, "value {value:#x} is not an element of a field of size {size}")
            }
            GfError::DivisionByZero => write!(f, "division by zero in GF(2^m)"),
            GfError::DimensionMismatch { context } => {
                write!(f, "matrix dimension mismatch: {context}")
            }
            GfError::SingularMatrix => write!(f, "matrix is singular over GF(2)"),
            GfError::CoefficientOutOfField { value } => {
                write!(f, "polynomial coefficient {value:#x} lies outside the field")
            }
        }
    }
}

impl Error for GfError {}
