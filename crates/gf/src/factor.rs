//! Integer factorisation helpers.
//!
//! Orders of LFSRs and of field elements are divisors of `2^d − 1` (or
//! `q^k − 1`), so primitivity and exact-period computations need the prime
//! factorisation of 128-bit integers. Trial division handles the sizes this
//! workspace actually meets (`d ≤ 64`); a Pollard-rho fallback keeps the
//! function total for adversarial inputs.

/// Returns the distinct prime divisors of `n` in increasing order.
///
/// # Example
///
/// ```
/// // 2^16 − 1 = 3 · 5 · 17 · 257
/// assert_eq!(prt_gf::factor::prime_divisors(65535), vec![3, 5, 17, 257]);
/// ```
pub fn prime_divisors(mut n: u128) -> Vec<u128> {
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    for p in [2u128, 3, 5] {
        if n.is_multiple_of(p) {
            out.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
    }
    // Wheel over 6k±1 up to 2^20; beyond that fall back to Pollard rho.
    let mut p = 7u128;
    while p.saturating_mul(p) <= n && p < (1 << 20) {
        if n.is_multiple_of(p) {
            out.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
        p += if p % 6 == 1 { 4 } else { 2 };
    }
    if n > 1 {
        if is_probable_prime(n) {
            out.push(n);
        } else {
            let mut stack = vec![n];
            while let Some(v) = stack.pop() {
                if v == 1 {
                    continue;
                }
                if is_probable_prime(v) {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                    continue;
                }
                let d = pollard_rho(v);
                stack.push(d);
                stack.push(v / d);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Full prime factorisation as `(prime, exponent)` pairs in increasing order.
pub fn factorize(mut n: u128) -> Vec<(u128, u32)> {
    let mut out = Vec::new();
    for p in prime_divisors(n) {
        let mut e = 0;
        while n.is_multiple_of(p) {
            n /= p;
            e += 1;
        }
        out.push((p, e));
    }
    out
}

/// Deterministic Miller–Rabin for `u128` (witness set valid for < 2^128 with
/// overwhelming probability; exact below 3.3·10^24).
pub fn is_probable_prime(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod(a: u128, b: u128, m: u128) -> u128 {
    // Schoolbook double-and-add to avoid 256-bit intermediates.
    if let Some(p) = a.checked_mul(b) {
        return p % m;
    }
    let mut result = 0u128;
    let mut a = a % m;
    let mut b = b;
    while b > 0 {
        if b & 1 == 1 {
            result = (result + a) % m;
        }
        a = (a << 1) % m;
        b >>= 1;
    }
    result
}

fn pow_mod(mut a: u128, mut e: u128, m: u128) -> u128 {
    let mut acc = 1u128 % m;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

fn pollard_rho(n: u128) -> u128 {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c = 1u128;
    loop {
        let f = |x: u128| (mul_mod(x, x, n) + c) % n;
        let (mut x, mut y, mut d) = (2u128, 2u128, 1u128);
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1;
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factorisations() {
        assert_eq!(prime_divisors(0), Vec::<u128>::new());
        assert_eq!(prime_divisors(1), Vec::<u128>::new());
        assert_eq!(prime_divisors(2), vec![2]);
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(255), vec![3, 5, 17]);
        assert_eq!(prime_divisors(65535), vec![3, 5, 17, 257]);
    }

    #[test]
    fn mersenne_like_orders() {
        // 2^31 − 1 is prime (Mersenne).
        assert_eq!(prime_divisors((1 << 31) - 1), vec![(1 << 31) - 1]);
        // 2^32 − 1 = 3 · 5 · 17 · 257 · 65537
        assert_eq!(prime_divisors((1u128 << 32) - 1), vec![3, 5, 17, 257, 65537]);
        // 2^64 − 1 = 3 · 5 · 17 · 257 · 641 · 65537 · 6700417
        assert_eq!(prime_divisors(u64::MAX as u128), vec![3, 5, 17, 257, 641, 65537, 6700417]);
    }

    #[test]
    fn factorize_with_exponents() {
        assert_eq!(factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
        assert_eq!(factorize(1024), vec![(2, 10)]);
    }

    #[test]
    fn primality() {
        let primes = [2u128, 3, 5, 17, 257, 65537, 2147483647];
        for p in primes {
            assert!(is_probable_prime(p), "{p}");
        }
        let composites = [1u128, 4, 255, 65535, 561, 1105, 6601]; // incl. Carmichael
        for c in composites {
            assert!(!is_probable_prime(c), "{c}");
        }
    }

    #[test]
    fn rho_splits_semiprime() {
        let n = 1_000_003u128 * 999_983;
        let mut ps = prime_divisors(n);
        ps.sort_unstable();
        assert_eq!(ps, vec![999_983, 1_000_003]);
    }
}
