//! Matrices over GF(2) with up to 128 columns.
//!
//! Rows are packed into `u128` words (bit `j` of row `i` = entry `(i, j)`),
//! which is ample for this workspace: the largest matrices are the
//! `k·m × k·m` transition matrices of word-oriented LFSRs (`k ≤ 4`,
//! `m ≤ 32`).

use crate::GfError;

/// A dense matrix over GF(2).
///
/// # Example
///
/// ```
/// use prt_gf::BitMatrix;
///
/// let m = BitMatrix::identity(3);
/// assert_eq!(m.mul_vec(0b101), 0b101);
/// assert_eq!(m.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: Vec<u128>,
    cols: u32,
}

impl BitMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 128`.
    pub fn zero(rows: usize, cols: u32) -> BitMatrix {
        assert!(cols <= 128, "at most 128 columns supported");
        BitMatrix { rows: vec![0; rows], cols }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: u32) -> BitMatrix {
        let mut m = BitMatrix::zero(n as usize, n);
        for i in 0..n {
            m.set(i as usize, i, true);
        }
        m
    }

    /// Builds a matrix from packed rows.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 128` or any row has bits at or above `cols`.
    pub fn from_rows(rows: Vec<u128>, cols: u32) -> BitMatrix {
        assert!(cols <= 128, "at most 128 columns supported");
        let mask = Self::col_mask(cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r & !mask == 0, "row {i} has bits outside the column range");
        }
        BitMatrix { rows, cols }
    }

    fn col_mask(cols: u32) -> u128 {
        if cols == 128 {
            u128::MAX
        } else {
            (1u128 << cols) - 1
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> u32 {
        self.cols
    }

    /// Returns entry `(i, j)`.
    pub fn get(&self, i: usize, j: u32) -> bool {
        (self.rows[i] >> j) & 1 == 1
    }

    /// Sets entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: u32, value: bool) {
        if value {
            self.rows[i] |= 1u128 << j;
        } else {
            self.rows[i] &= !(1u128 << j);
        }
    }

    /// Returns row `i` as packed bits.
    pub fn row(&self, i: usize) -> u128 {
        self.rows[i]
    }

    /// Matrix–vector product over GF(2); bit `j` of `v` is coordinate `j`.
    pub fn mul_vec(&self, v: u128) -> u128 {
        let mut out = 0u128;
        for (i, &row) in self.rows.iter().enumerate() {
            let bit = ((row & v).count_ones() & 1) as u128;
            out |= bit << i;
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// [`GfError::DimensionMismatch`] if `self.ncols() != rhs.nrows()`.
    pub fn mul(&self, rhs: &BitMatrix) -> Result<BitMatrix, GfError> {
        if self.cols as usize != rhs.nrows() {
            return Err(GfError::DimensionMismatch { context: "matrix product inner dimensions" });
        }
        let mut out = BitMatrix::zero(self.nrows(), rhs.cols);
        for i in 0..self.nrows() {
            let mut acc = 0u128;
            let mut a = self.rows[i];
            while a != 0 {
                let k = a.trailing_zeros();
                acc ^= rhs.rows[k as usize];
                a &= a - 1;
            }
            out.rows[i] = acc;
        }
        Ok(out)
    }

    /// Matrix power `self^e` (square matrices only).
    ///
    /// # Errors
    ///
    /// [`GfError::DimensionMismatch`] if the matrix is not square.
    pub fn pow(&self, mut e: u128) -> Result<BitMatrix, GfError> {
        if self.nrows() != self.cols as usize {
            return Err(GfError::DimensionMismatch { context: "matrix power requires square" });
        }
        let mut base = self.clone();
        let mut acc = BitMatrix::identity(self.cols);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base)?;
            }
            base = base.mul(&base)?;
            e >>= 1;
        }
        Ok(acc)
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zero(self.cols as usize, self.nrows() as u32);
        for i in 0..self.nrows() {
            for j in 0..self.cols {
                if self.get(i, j) {
                    out.set(j as usize, i as u32, true);
                }
            }
        }
        out
    }

    /// Rank over GF(2) (Gaussian elimination).
    pub fn rank(&self) -> u32 {
        let mut rows = self.rows.clone();
        let mut rank = 0u32;
        for col in (0..self.cols).rev() {
            let bit = 1u128 << col;
            if let Some(p) = (rank as usize..rows.len()).find(|&r| rows[r] & bit != 0) {
                rows.swap(rank as usize, p);
                let pivot = rows[rank as usize];
                for (r, row) in rows.iter_mut().enumerate() {
                    if r != rank as usize && *row & bit != 0 {
                        *row ^= pivot;
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Inverse over GF(2).
    ///
    /// # Errors
    ///
    /// * [`GfError::DimensionMismatch`] if the matrix is not square.
    /// * [`GfError::SingularMatrix`] if no inverse exists.
    pub fn inverse(&self) -> Result<BitMatrix, GfError> {
        let n = self.cols as usize;
        if self.nrows() != n {
            return Err(GfError::DimensionMismatch { context: "inverse requires square" });
        }
        let mut a = self.rows.clone();
        let mut b = BitMatrix::identity(self.cols).rows;
        for col in 0..n {
            let bit = 1u128 << col;
            let p = (col..n).find(|&r| a[r] & bit != 0).ok_or(GfError::SingularMatrix)?;
            a.swap(col, p);
            b.swap(col, p);
            let (pa, pb) = (a[col], b[col]);
            for r in 0..n {
                if r != col && a[r] & bit != 0 {
                    a[r] ^= pa;
                    b[r] ^= pb;
                }
            }
        }
        Ok(BitMatrix { rows: b, cols: self.cols })
    }

    /// `true` if the matrix is invertible (square and full-rank).
    pub fn is_invertible(&self) -> bool {
        self.nrows() == self.cols as usize && self.rank() == self.cols
    }
}

impl std::fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.nrows() {
            for j in 0..self.cols {
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            if i + 1 < self.nrows() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let id = BitMatrix::identity(5);
        assert_eq!(id.rank(), 5);
        assert!(id.is_invertible());
        assert_eq!(id.inverse().unwrap(), id);
        for v in [0u128, 1, 0b10110, 0b11111] {
            assert_eq!(id.mul_vec(v), v);
        }
    }

    #[test]
    fn mul_matches_manual() {
        // [[1,1],[0,1]] · [[1,0],[1,1]] = [[0,1],[1,1]]
        let a = BitMatrix::from_rows(vec![0b11, 0b10], 2);
        let b = BitMatrix::from_rows(vec![0b01, 0b11], 2);
        let c = a.mul(&b).unwrap();
        assert_eq!(c.row(0), 0b10);
        assert_eq!(c.row(1), 0b11);
    }

    #[test]
    fn mul_vec_is_linear() {
        let m = BitMatrix::from_rows(vec![0b101, 0b011, 0b110], 3);
        for u in 0..8u128 {
            for v in 0..8u128 {
                assert_eq!(m.mul_vec(u ^ v), m.mul_vec(u) ^ m.mul_vec(v));
            }
        }
    }

    #[test]
    fn pow_matches_iterated_mul() {
        let m = BitMatrix::from_rows(vec![0b10, 0b11], 2); // companion of x²+x+1
        let mut acc = BitMatrix::identity(2);
        for e in 0..10u128 {
            assert_eq!(m.pow(e).unwrap(), acc, "e={e}");
            acc = acc.mul(&m).unwrap();
        }
        // Companion of a primitive quadratic has order 2²−1 = 3.
        assert_eq!(m.pow(3).unwrap(), BitMatrix::identity(2));
        assert_ne!(m.pow(1).unwrap(), BitMatrix::identity(2));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = BitMatrix::from_rows(vec![0b110, 0b011, 0b100], 3);
        assert!(m.is_invertible());
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv).unwrap(), BitMatrix::identity(3));
        assert_eq!(inv.mul(&m).unwrap(), BitMatrix::identity(3));
    }

    #[test]
    fn singular_matrix_rejected() {
        let m = BitMatrix::from_rows(vec![0b11, 0b11], 2);
        assert_eq!(m.rank(), 1);
        assert!(matches!(m.inverse(), Err(GfError::SingularMatrix)));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = BitMatrix::zero(2, 3);
        let b = BitMatrix::zero(2, 3);
        assert!(matches!(a.mul(&b), Err(GfError::DimensionMismatch { .. })));
        assert!(matches!(a.pow(2), Err(GfError::DimensionMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let m = BitMatrix::from_rows(vec![0b101, 0b010], 3);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.transpose(), m);
        assert!(t.get(0, 0) && t.get(2, 0) && t.get(1, 1));
    }

    #[test]
    fn rank_of_rectangular() {
        let m = BitMatrix::from_rows(vec![0b1010, 0b0101, 0b1111], 4);
        assert_eq!(m.rank(), 2); // third row = first ^ second
    }

    #[test]
    fn display_renders_grid() {
        let m = BitMatrix::from_rows(vec![0b01, 0b10], 2);
        assert_eq!(m.to_string(), "10\n01");
    }
}
