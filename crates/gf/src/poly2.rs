//! Dense polynomials over GF(2), packed into a `u128`.
//!
//! Bit `i` of the backing word is the coefficient of `x^i`, so the zero
//! polynomial is `0` and `x^4 + x + 1` is `0b1_0011`. Degrees up to 127 are
//! representable, which comfortably covers every polynomial this workspace
//! manipulates (field moduli up to degree 32 and LFSR feedback polynomials up
//! to degree 64).

use std::fmt;

/// A polynomial over GF(2) of degree at most 127.
///
/// # Example
///
/// ```
/// use prt_gf::Poly2;
///
/// let p = Poly2::from_bits(0b1_0011); // z^4 + z + 1 — the paper's p(z)
/// assert_eq!(p.degree(), 4);
/// assert!(p.is_irreducible());
/// assert!(p.is_primitive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Poly2(u128);

impl Poly2 {
    /// The zero polynomial.
    pub const ZERO: Poly2 = Poly2(0);
    /// The constant polynomial `1`.
    pub const ONE: Poly2 = Poly2(1);
    /// The monomial `x`.
    pub const X: Poly2 = Poly2(2);

    /// Creates a polynomial from its packed coefficient bits
    /// (bit `i` = coefficient of `x^i`).
    pub const fn from_bits(bits: u128) -> Poly2 {
        Poly2(bits)
    }

    /// Creates the monomial `x^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > 127`.
    pub fn monomial(k: u32) -> Poly2 {
        assert!(k <= 127, "monomial degree {k} exceeds 127");
        Poly2(1u128 << k)
    }

    /// Builds a polynomial from the exponents of its non-zero terms.
    ///
    /// ```
    /// use prt_gf::Poly2;
    /// assert_eq!(Poly2::from_terms(&[4, 1, 0]).bits(), 0b1_0011);
    /// ```
    pub fn from_terms(exponents: &[u32]) -> Poly2 {
        let mut bits = 0u128;
        for &e in exponents {
            assert!(e <= 127, "term degree {e} exceeds 127");
            bits ^= 1u128 << e;
        }
        Poly2(bits)
    }

    /// Returns the packed coefficient bits.
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Returns `true` for the zero polynomial.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Degree of the polynomial; the zero polynomial has degree `-1` by
    /// convention.
    pub const fn degree(self) -> i32 {
        if self.0 == 0 {
            -1
        } else {
            127 - self.0.leading_zeros() as i32
        }
    }

    /// Coefficient of `x^i` (0 or 1).
    pub const fn coeff(self, i: u32) -> u8 {
        if i > 127 {
            0
        } else {
            ((self.0 >> i) & 1) as u8
        }
    }

    /// Number of non-zero terms.
    pub const fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Polynomial addition (= subtraction) over GF(2).
    pub const fn add(self, rhs: Poly2) -> Poly2 {
        Poly2(self.0 ^ rhs.0)
    }

    /// Carry-less product of two polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the product degree would exceed 127.
    #[allow(clippy::should_implement_trait)] // `Mul` is implemented and delegates here
    pub fn mul(self, rhs: Poly2) -> Poly2 {
        if self.is_zero() || rhs.is_zero() {
            return Poly2::ZERO;
        }
        assert!(
            self.degree() + rhs.degree() <= 127,
            "product degree {} exceeds 127",
            self.degree() + rhs.degree()
        );
        let mut acc = 0u128;
        let mut a = self.0;
        let mut shift = 0;
        while a != 0 {
            let tz = a.trailing_zeros();
            shift += tz;
            acc ^= rhs.0 << shift;
            a >>= tz + 1;
            shift += 1;
        }
        Poly2(acc)
    }

    /// Quotient and remainder of polynomial division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(self, divisor: Poly2) -> (Poly2, Poly2) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        let dd = divisor.degree();
        let mut rem = self.0;
        let mut quot = 0u128;
        loop {
            let rd = Poly2(rem).degree();
            if rd < dd {
                break;
            }
            let shift = (rd - dd) as u32;
            rem ^= divisor.0 << shift;
            quot ^= 1u128 << shift;
        }
        (Poly2(quot), Poly2(rem))
    }

    /// Remainder of polynomial division.
    #[allow(clippy::should_implement_trait)] // `Rem` is implemented and delegates here
    pub fn rem(self, divisor: Poly2) -> Poly2 {
        self.div_rem(divisor).1
    }

    /// Greatest common divisor (always monic over GF(2) since the leading
    /// coefficient is 1).
    pub fn gcd(self, other: Poly2) -> Poly2 {
        let (mut a, mut b) = (self, other);
        while !b.is_zero() {
            let r = a.rem(b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular product: `self · rhs mod modulus`, never overflowing the
    /// 128-bit backing word (reduction is interleaved with the shifts).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero, or if either operand is not already
    /// reduced modulo `modulus`.
    pub fn mulmod(self, rhs: Poly2, modulus: Poly2) -> Poly2 {
        assert!(!modulus.is_zero(), "zero modulus");
        let md = modulus.degree();
        assert!(
            self.degree() < md && rhs.degree() < md,
            "operands must be reduced modulo the modulus"
        );
        if md == 0 {
            return Poly2::ZERO; // everything is 0 mod a constant
        }
        let mut acc = 0u128;
        let mut b = rhs.0; // running rhs · x^i mod modulus
        let mut a = self.0;
        let top = 1u128 << md;
        while a != 0 {
            if a & 1 == 1 {
                acc ^= b;
            }
            a >>= 1;
            b <<= 1;
            if b & top != 0 {
                b ^= modulus.0;
            }
        }
        Poly2(acc)
    }

    /// Modular squaring.
    pub fn sqrmod(self, modulus: Poly2) -> Poly2 {
        self.mulmod(self, modulus)
    }

    /// Modular exponentiation: `self^e mod modulus`.
    pub fn powmod(self, mut e: u128, modulus: Poly2) -> Poly2 {
        let mut base = self.rem(modulus);
        let mut acc = Poly2::ONE.rem(modulus);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mulmod(base, modulus);
            }
            base = base.sqrmod(modulus);
            e >>= 1;
        }
        acc
    }

    /// Evaluates the polynomial at a point of GF(2): the result is the parity
    /// of the coefficients selected by powers of the point.
    pub fn eval(self, point: u8) -> u8 {
        match point & 1 {
            0 => self.coeff(0),
            _ => (self.weight() & 1) as u8,
        }
    }

    /// Rabin's irreducibility test over GF(2).
    ///
    /// `f` of degree `d ≥ 1` is irreducible iff `x^(2^d) ≡ x (mod f)` and for
    /// every prime divisor `p` of `d`, `gcd(x^(2^(d/p)) − x, f) = 1`.
    pub fn is_irreducible(self) -> bool {
        let d = self.degree();
        if d < 1 {
            return false;
        }
        if d == 1 {
            return true; // x and x+1
        }
        // x must not divide f (i.e. constant term must be 1) except f = x.
        if self.coeff(0) == 0 {
            return false;
        }
        let d = d as u32;
        // x^(2^k) mod f by repeated squaring of x.
        let frob = |k: u32| -> Poly2 {
            let mut t = Poly2::X.rem(self);
            for _ in 0..k {
                t = t.sqrmod(self);
            }
            t
        };
        if frob(d) != Poly2::X.rem(self) {
            return false;
        }
        for p in crate::factor::prime_divisors(d as u128) {
            let k = d / p as u32;
            let h = frob(k).add(Poly2::X.rem(self));
            // h ≡ 0 means f divides x^(2^k) − x, i.e. every factor of f has
            // degree dividing k < d — certainly reducible.
            if h.is_zero() || self.gcd(h).degree() > 0 {
                return false;
            }
        }
        true
    }

    /// Tests whether the polynomial is *primitive* over GF(2): irreducible of
    /// degree `d` with the residue class of `x` generating the full
    /// multiplicative group of order `2^d − 1`.
    ///
    /// Primitive feedback polynomials give maximal-period LFSRs, the property
    /// the paper relies on for pseudo-ring closure.
    pub fn is_primitive(self) -> bool {
        let d = self.degree();
        if d < 1 || !self.is_irreducible() {
            return false;
        }
        if d == 1 {
            // x + 1 is primitive for GF(2) (order 1 group); x itself is not
            // irreducible-with-nonzero-constant so it was rejected above.
            return self == Poly2::from_bits(0b11);
        }
        let order: u128 = (1u128 << d) - 1;
        for p in crate::factor::prime_divisors(order) {
            if Poly2::X.powmod(order / p, self) == Poly2::ONE {
                return false;
            }
        }
        true
    }

    /// Multiplicative order of the residue class of `x` modulo this
    /// polynomial, or `None` if `x` is not invertible (constant term 0) or
    /// the polynomial is constant.
    ///
    /// For an irreducible feedback polynomial this is exactly the period of
    /// the associated LFSR.
    pub fn order_of_x(self) -> Option<u128> {
        let d = self.degree();
        if d < 1 || self.coeff(0) == 0 {
            return None;
        }
        // The order divides 2^d − 1 only for irreducible f; in general it
        // divides the order of the unit group, which we bound by brute force
        // for reducible moduli of small degree and compute exactly via the
        // divisor-refinement method when irreducible.
        if self.is_irreducible() {
            let mut e: u128 = (1u128 << d) - 1;
            for p in crate::factor::prime_divisors(e) {
                while e.is_multiple_of(p) && Poly2::X.powmod(e / p, self) == Poly2::ONE {
                    e /= p;
                }
            }
            Some(e)
        } else {
            // Brute force; acceptable because reducible moduli only appear in
            // tests and diagnostics.
            let mut t = Poly2::X.rem(self);
            let start = t;
            let mut k: u128 = 1;
            loop {
                t = t.mulmod(Poly2::X.rem(self), self);
                k += 1;
                if t == start {
                    return Some(k - 1);
                }
                if k > (1u128 << (2 * d.min(40))) {
                    return None; // x is not a unit modulo f
                }
            }
        }
    }

    /// Returns the lexicographically smallest irreducible polynomial of the
    /// given degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or exceeds 63 (search space too large).
    pub fn smallest_irreducible(degree: u32) -> Poly2 {
        assert!((1..=63).contains(&degree), "degree must be in 1..=63");
        Self::search(degree, |p| p.is_irreducible())
    }

    /// Returns the lexicographically smallest primitive polynomial of the
    /// given degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or exceeds 63.
    pub fn smallest_primitive(degree: u32) -> Poly2 {
        assert!((1..=63).contains(&degree), "degree must be in 1..=63");
        Self::search(degree, |p| p.is_primitive())
    }

    fn search(degree: u32, pred: impl Fn(Poly2) -> bool) -> Poly2 {
        let hi = 1u128 << degree;
        // Odd constant term is necessary for irreducibility (deg ≥ 1 beyond x).
        let mut low = 1u128;
        loop {
            assert!(low < hi, "no polynomial found — impossible for GF(2)");
            let cand = Poly2(hi | low);
            if pred(cand) {
                return cand;
            }
            low += 2;
        }
    }

    /// Enumerates all irreducible polynomials of the given degree.
    ///
    /// Intended for small degrees (the count grows like `2^d / d`).
    pub fn irreducibles(degree: u32) -> Vec<Poly2> {
        assert!((1..=20).contains(&degree), "degree must be in 1..=20");
        let hi = 1u128 << degree;
        let mut out = Vec::new();
        if degree == 1 {
            return vec![Poly2(0b10), Poly2(0b11)];
        }
        let mut low = 1u128;
        while low < hi {
            let cand = Poly2(hi | low);
            if cand.is_irreducible() {
                out.push(cand);
            }
            low += 2;
        }
        out
    }
}

impl fmt::Display for Poly2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for i in (0..=self.degree() as u32).rev() {
            if self.coeff(i) == 1 {
                if !first {
                    write!(f, " + ")?;
                }
                match i {
                    0 => write!(f, "1")?,
                    1 => write!(f, "x")?,
                    _ => write!(f, "x^{i}")?,
                }
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for Poly2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Poly2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Poly2 {
    fn from(bits: u64) -> Poly2 {
        Poly2(bits as u128)
    }
}

impl std::ops::Add for Poly2 {
    type Output = Poly2;
    fn add(self, rhs: Poly2) -> Poly2 {
        Poly2::add(self, rhs)
    }
}

impl std::ops::Mul for Poly2 {
    type Output = Poly2;
    fn mul(self, rhs: Poly2) -> Poly2 {
        Poly2::mul(self, rhs)
    }
}

impl std::ops::Rem for Poly2 {
    type Output = Poly2;
    fn rem(self, rhs: Poly2) -> Poly2 {
        Poly2::rem(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_weight() {
        assert_eq!(Poly2::ZERO.degree(), -1);
        assert_eq!(Poly2::ONE.degree(), 0);
        assert_eq!(Poly2::X.degree(), 1);
        assert_eq!(Poly2::from_bits(0b1_0011).degree(), 4);
        assert_eq!(Poly2::from_bits(0b1_0011).weight(), 3);
    }

    #[test]
    fn from_terms_matches_bits() {
        assert_eq!(Poly2::from_terms(&[2, 1, 0]), Poly2::from_bits(0b111));
        assert_eq!(Poly2::from_terms(&[]), Poly2::ZERO);
        // duplicate exponents cancel over GF(2)
        assert_eq!(Poly2::from_terms(&[3, 3]), Poly2::ZERO);
    }

    #[test]
    fn add_is_xor() {
        let a = Poly2::from_bits(0b1011);
        let b = Poly2::from_bits(0b0110);
        assert_eq!(a.add(b).bits(), 0b1101);
        assert_eq!(a.add(a), Poly2::ZERO);
    }

    #[test]
    fn mul_small() {
        // (x + 1)(x + 1) = x² + 1 over GF(2)
        let xp1 = Poly2::from_bits(0b11);
        assert_eq!(xp1.mul(xp1).bits(), 0b101);
        // (x² + x + 1)(x + 1) = x³ + 1
        let p = Poly2::from_bits(0b111);
        assert_eq!(p.mul(xp1).bits(), 0b1001);
    }

    #[test]
    fn div_rem_roundtrip() {
        let a = Poly2::from_bits(0b1101_0111);
        let b = Poly2::from_bits(0b1011);
        let (q, r) = a.div_rem(b);
        assert_eq!(q.mul(b).add(r), a);
        assert!(r.degree() < b.degree());
    }

    #[test]
    fn gcd_of_multiples() {
        let g = Poly2::from_bits(0b111); // x²+x+1 irreducible
                                         // Multipliers x and x+1 are coprime, so gcd(a, b) = g exactly.
        let a = g.mul(Poly2::from_bits(0b10));
        let b = g.mul(Poly2::from_bits(0b11));
        assert_eq!(a.gcd(b), g);
    }

    #[test]
    fn mulmod_agrees_with_mul_then_rem() {
        let m = Poly2::from_bits(0b1_0011);
        for a in 0..16u128 {
            for b in 0..16u128 {
                let lhs = Poly2(a).mulmod(Poly2(b), m);
                let rhs = Poly2(a).mul(Poly2(b)).rem(m);
                assert_eq!(lhs, rhs, "a={a:04b} b={b:04b}");
            }
        }
    }

    #[test]
    fn powmod_matches_iterated_mul() {
        let m = Poly2::from_bits(0b1_0011);
        let x = Poly2::X;
        let mut acc = Poly2::ONE;
        for e in 0..40u128 {
            assert_eq!(x.powmod(e, m), acc, "e={e}");
            acc = acc.mulmod(x, m);
        }
    }

    #[test]
    fn known_irreducibles() {
        // Classic table entries.
        for bits in [0b111u128, 0b1011, 0b1_0011, 0b10_0101, 0b100_0011] {
            assert!(Poly2::from_bits(bits).is_irreducible(), "{bits:b}");
        }
        // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive (order 5).
        assert!(Poly2::from_bits(0b1_1111).is_irreducible());
        // Reducible examples.
        assert!(!Poly2::from_bits(0b101).is_irreducible()); // (x+1)²
        assert!(!Poly2::from_bits(0b1001).is_irreducible()); // (x+1)(x²+x+1)
        assert!(!Poly2::from_bits(0b110).is_irreducible()); // x(x+1)
    }

    #[test]
    fn primitivity_of_paper_modulus() {
        // p(z) = 1 + z + z⁴ from Figure 1b is primitive.
        let p = Poly2::from_bits(0b1_0011);
        assert!(p.is_primitive());
        assert_eq!(p.order_of_x(), Some(15));
        // The non-primitive irreducible quartic has order 5.
        let q = Poly2::from_bits(0b1_1111);
        assert!(!q.is_primitive());
        assert_eq!(q.order_of_x(), Some(5));
    }

    #[test]
    fn counts_of_irreducibles_match_necklace_formula() {
        // #irreducible(d) = (1/d) Σ_{e|d} μ(d/e) 2^e
        let expected = [(1u32, 2usize), (2, 1), (3, 2), (4, 3), (5, 6), (6, 9), (7, 18), (8, 30)];
        for (d, n) in expected {
            assert_eq!(Poly2::irreducibles(d).len(), n, "degree {d}");
        }
    }

    #[test]
    fn smallest_primitive_known_values() {
        assert_eq!(Poly2::smallest_primitive(2).bits(), 0b111);
        assert_eq!(Poly2::smallest_primitive(3).bits(), 0b1011);
        assert_eq!(Poly2::smallest_primitive(4).bits(), 0b1_0011);
        assert_eq!(Poly2::smallest_primitive(8).bits(), 0b1_0001_1101); // x^8+x^4+x^3+x^2+1
    }

    #[test]
    fn display_formats_terms() {
        assert_eq!(Poly2::from_bits(0b1_0011).to_string(), "x^4 + x + 1");
        assert_eq!(Poly2::ZERO.to_string(), "0");
        assert_eq!(Poly2::ONE.to_string(), "1");
    }

    #[test]
    fn eval_at_gf2_points() {
        let p = Poly2::from_bits(0b111); // x²+x+1
        assert_eq!(p.eval(0), 1);
        assert_eq!(p.eval(1), 1); // 1+1+1 = 1
        let q = Poly2::from_bits(0b110); // x²+x
        assert_eq!(q.eval(0), 0);
        assert_eq!(q.eval(1), 0);
    }
}
