//! Factorisation of polynomials over GF(2).
//!
//! A reducible LFSR feedback polynomial splits the state space into cycles
//! whose lengths are determined by the factors; π-tests configured with a
//! reducible `g(x)` silently lose period (and therefore TDB variety), so
//! the library exposes full factorisation for diagnostics:
//! square-free decomposition, distinct-degree splitting, and Cantor–
//! Zassenhaus equal-degree splitting (the GF(2) variant using trace maps).

use crate::poly2::Poly2;

/// An irreducible factor with its multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PolyFactor {
    /// The irreducible factor.
    pub poly: Poly2,
    /// Its multiplicity in the factorisation.
    pub multiplicity: u32,
}

/// Factors a polynomial over GF(2) into irreducible factors with
/// multiplicities, sorted ascending by packed bits.
///
/// # Panics
///
/// Panics if `f` is zero or constant (nothing to factor).
///
/// # Example
///
/// ```
/// use prt_gf::poly2::Poly2;
/// use prt_gf::factor_poly::factor;
///
/// // x⁴ + x = x·(x+1)·(x²+x+1)
/// let f = Poly2::from_bits(0b1_0010);
/// let fs = factor(f);
/// let parts: Vec<u128> = fs.iter().map(|p| p.poly.bits()).collect();
/// assert_eq!(parts, vec![0b10, 0b11, 0b111]);
/// ```
pub fn factor(f: Poly2) -> Vec<PolyFactor> {
    assert!(f.degree() >= 1, "factorisation needs degree ≥ 1");
    let mut out: Vec<PolyFactor> = Vec::new();
    let mut push = |p: Poly2, m: u32| match out.iter_mut().find(|pf| pf.poly == p) {
        Some(pf) => pf.multiplicity += m,
        None => out.push(PolyFactor { poly: p, multiplicity: m }),
    };

    // Strip powers of x first (zero constant term).
    let mut f = f;
    let mut x_mult = 0u32;
    while f.coeff(0) == 0 && f.degree() > 0 {
        f = f.div_rem(Poly2::X).0;
        x_mult += 1;
    }
    if x_mult > 0 {
        push(Poly2::X, x_mult);
    }
    if f.degree() >= 1 {
        for (p, m) in factor_monic(f) {
            push(p, m);
        }
    }
    out.sort_unstable();
    out
}

/// Recomposes a factor list into the original polynomial (for checking).
pub fn expand(factors: &[PolyFactor]) -> Poly2 {
    let mut acc = Poly2::ONE;
    for pf in factors {
        for _ in 0..pf.multiplicity {
            acc = acc.mul(pf.poly);
        }
    }
    acc
}

fn formal_derivative(f: Poly2) -> Poly2 {
    // Over GF(2): d/dx x^i = i·x^{i-1}; only odd i survive.
    let mut out = 0u128;
    let mut i = 1u32;
    while i as i32 <= f.degree() {
        if f.coeff(i) == 1 && i % 2 == 1 {
            out |= 1u128 << (i - 1);
        }
        i += 1;
    }
    Poly2::from_bits(out)
}

/// Square root of a polynomial that is a perfect square over GF(2)
/// (only even-degree terms present).
fn poly_sqrt(f: Poly2) -> Poly2 {
    let mut out = 0u128;
    let mut i = 0u32;
    while i as i32 <= f.degree() {
        if f.coeff(i) == 1 {
            debug_assert!(i.is_multiple_of(2), "not a perfect square");
            out |= 1u128 << (i / 2);
        }
        i += 2;
    }
    Poly2::from_bits(out)
}

fn factor_monic(f: Poly2) -> Vec<(Poly2, u32)> {
    if f.degree() == 0 {
        return Vec::new();
    }
    if f.is_irreducible() {
        return vec![(f, 1)];
    }
    let d = formal_derivative(f);
    if d.is_zero() {
        // f = g² over GF(2).
        let g = poly_sqrt(f);
        return factor_monic(g).into_iter().map(|(p, m)| (p, 2 * m)).collect();
    }
    let g = f.gcd(d);
    if g.degree() > 0 {
        // Split into the square-free part and the repeated part.
        let sf = f.div_rem(g).0;
        let mut out = factor_monic(sf);
        for (p, m) in factor_monic(g) {
            match out.iter_mut().find(|(q, _)| *q == p) {
                Some((_, mm)) => *mm += m,
                None => out.push((p, m)),
            }
        }
        return out;
    }
    // f is square-free: distinct-degree then equal-degree splitting.
    let mut out = Vec::new();
    let mut rest = f;
    let mut degree = 1u32;
    let mut h = Poly2::X.rem(rest); // x^(2^i) mod rest
    while 2 * degree <= rest.degree() as u32 {
        h = h.sqrmod(rest);
        let g = rest.gcd(h.add(Poly2::X.rem(rest)));
        if g.degree() > 0 {
            for p in equal_degree_split(g, degree) {
                out.push((p, 1));
            }
            rest = rest.div_rem(g).0;
            h = h.rem(rest);
        }
        degree += 1;
    }
    if rest.degree() > 0 {
        out.push((rest, 1));
    }
    out
}

/// Splits a square-free product of irreducibles of equal degree `d` using
/// the GF(2) trace construction.
fn equal_degree_split(f: Poly2, d: u32) -> Vec<Poly2> {
    if f.degree() as u32 == d {
        return vec![f];
    }
    // Try trace polynomials T(a·x) = Σ_{i<d} (a·x)^(2^i) for successive
    // "random" a drawn deterministically.
    let mut seeds: u128 = 2;
    loop {
        let a = Poly2::from_bits(seeds % (1u128 << f.degree())).rem(f);
        seeds = seeds.wrapping_mul(0x9E37_79B9).wrapping_add(1) | 2;
        if a.is_zero() {
            continue;
        }
        // trace = a + a² + a⁴ + … (d terms), all mod f
        let mut trace = Poly2::ZERO;
        let mut t = a;
        for _ in 0..d {
            trace = trace.add(t);
            t = t.sqrmod(f);
        }
        let g = f.gcd(trace);
        if g.degree() > 0 && g.degree() < f.degree() {
            let other = f.div_rem(g).0;
            let mut out = equal_degree_split(g, d);
            out.extend(equal_degree_split(other, d));
            return out;
        }
        // Also try trace + 1.
        let g = f.gcd(trace.add(Poly2::ONE));
        if g.degree() > 0 && g.degree() < f.degree() {
            let other = f.div_rem(g).0;
            let mut out = equal_degree_split(g, d);
            out.extend(equal_degree_split(other, d));
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_small_products() {
        // (x+1)² = x² + 1
        let fs = factor(Poly2::from_bits(0b101));
        assert_eq!(fs, vec![PolyFactor { poly: Poly2::from_bits(0b11), multiplicity: 2 }]);
        // x(x+1)(x²+x+1) = x⁴ + x
        let fs = factor(Poly2::from_bits(0b1_0010));
        assert_eq!(fs.len(), 3);
        assert_eq!(expand(&fs), Poly2::from_bits(0b1_0010));
    }

    #[test]
    fn irreducible_is_its_own_factorisation() {
        for bits in [0b111u128, 0b1011, 0b1_0011] {
            let f = Poly2::from_bits(bits);
            let fs = factor(f);
            assert_eq!(fs, vec![PolyFactor { poly: f, multiplicity: 1 }]);
        }
    }

    #[test]
    fn exhaustive_roundtrip_through_degree_10() {
        // Every polynomial of degree 2..=10 factors and recomposes.
        for bits in 4u128..(1 << 11) {
            let f = Poly2::from_bits(bits);
            if f.degree() < 2 {
                continue;
            }
            let fs = factor(f);
            assert_eq!(expand(&fs), f, "{bits:b}");
            for pf in &fs {
                assert!(pf.poly.is_irreducible(), "{:b} factor of {bits:b}", pf.poly.bits());
            }
        }
    }

    #[test]
    fn equal_degree_products_split() {
        // Product of the two irreducible cubics: (x³+x+1)(x³+x²+1)
        let f = Poly2::from_bits(0b1011).mul(Poly2::from_bits(0b1101));
        let fs = factor(f);
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|pf| pf.poly.degree() == 3 && pf.multiplicity == 1));
        // All three irreducible quartics multiplied together.
        let q: Vec<Poly2> = Poly2::irreducibles(4);
        let f = q.iter().copied().fold(Poly2::ONE, |a, b| a.mul(b));
        let fs = factor(f);
        assert_eq!(fs.len(), 3);
    }

    #[test]
    fn high_multiplicity() {
        // (x²+x+1)³
        let p = Poly2::from_bits(0b111);
        let f = p.mul(p).mul(p);
        let fs = factor(f);
        assert_eq!(fs, vec![PolyFactor { poly: p, multiplicity: 3 }]);
    }

    #[test]
    fn derivative_rules() {
        // d/dx (x³ + x² + 1) = 3x² + 2x = x² over GF(2)
        assert_eq!(formal_derivative(Poly2::from_bits(0b1101)), Poly2::from_bits(0b100));
        assert_eq!(formal_derivative(Poly2::from_bits(0b101)), Poly2::ZERO);
    }
}
