//! Galois-field arithmetic for pseudo-ring RAM testing.
//!
//! This crate is the mathematical substrate of the PRT (pseudo-ring testing)
//! reproduction: everything the virtual linear automaton of the paper needs
//! to be *predicted* rather than simulated.
//!
//! It provides:
//!
//! * [`Poly2`] — dense polynomials over GF(2) packed into a `u128`, with
//!   irreducibility (Rabin) and primitivity tests,
//! * [`Field`] — the finite field GF(2^m) for `1 ≤ m ≤ 32`, table-driven for
//!   small `m` and carry-less-multiply driven above that,
//! * [`PolyGf`] — polynomials with coefficients in GF(2^m), used to analyse
//!   the generator polynomial `g(x)` of word-oriented LFSRs,
//! * [`BitMatrix`] — matrices over GF(2) (up to 128 columns),
//! * [`mult_synth`] — synthesis of XOR-only combinational networks that
//!   multiply by a constant of GF(2^m), reproducing the paper's claim that a
//!   "multiplier by a constant contains only XOR-gates and can be implemented
//!   inherently in the memory circuit" (§2).
//!
//! # Example
//!
//! The field of the paper's Figure 1b: GF(2⁴) with `p(z) = 1 + z + z⁴`.
//!
//! ```
//! use prt_gf::Field;
//!
//! let f = Field::new(4, 0b1_0011).expect("p(z) = z^4 + z + 1 is irreducible");
//! // 2 ≡ z; the paper's recurrence multiplies by the constant 2.
//! assert_eq!(f.mul(2, 6), 12); // z · (z² + z) = z³ + z²
//! assert_eq!(f.mul(f.inv(7).unwrap(), 7), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod factor;
pub mod factor_poly;
pub mod field;
pub mod matrix;
pub mod mult_synth;
pub mod poly2;
pub mod polygf;

pub use error::GfError;
pub use factor_poly::PolyFactor;
pub use field::Field;
pub use matrix::BitMatrix;
pub use mult_synth::{SynthesisStrategy, XorGate, XorNetwork};
pub use poly2::Poly2;
pub use polygf::PolyGf;
