//! Polynomials with coefficients in GF(2^m).
//!
//! The word-oriented pseudo-ring test is governed by a generator polynomial
//! `g(x) = g0 + g1·x + … + gk·x^k` whose coefficients live in GF(2^m) — the
//! paper's running example is `g(x) = 1 + 2x + 2x²` over GF(2⁴). This module
//! provides the arithmetic needed to check such a polynomial for
//! irreducibility and primitivity over the extension field, which in turn
//! determines the period of the virtual LFSR and therefore the memory sizes
//! at which the pseudo-ring closes.

use crate::factor;
use crate::field::Field;
use crate::GfError;

/// A dense polynomial over GF(2^m); `coeffs[i]` is the coefficient of `x^i`.
///
/// The coefficient vector is kept *normalised*: no trailing zero
/// coefficients (the zero polynomial has an empty vector).
///
/// # Example
///
/// ```
/// use prt_gf::{Field, PolyGf};
///
/// let f = Field::new(4, 0b1_0011)?;
/// // The paper's generator polynomial g(x) = 1 + 2x + 2x².
/// let g = PolyGf::new(&f, vec![1, 2, 2])?;
/// assert_eq!(g.degree(), 2);
/// assert!(g.is_irreducible(&f));
/// # Ok::<(), prt_gf::GfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolyGf {
    coeffs: Vec<u64>,
}

impl PolyGf {
    /// Creates a polynomial after validating every coefficient against the
    /// field.
    ///
    /// # Errors
    ///
    /// [`GfError::CoefficientOutOfField`] if a coefficient has bits above
    /// the field degree.
    pub fn new(field: &Field, mut coeffs: Vec<u64>) -> Result<PolyGf, GfError> {
        for &c in &coeffs {
            if !field.contains(c) {
                return Err(GfError::CoefficientOutOfField { value: c });
            }
        }
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Ok(PolyGf { coeffs })
    }

    /// The zero polynomial.
    pub fn zero() -> PolyGf {
        PolyGf { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> PolyGf {
        PolyGf { coeffs: vec![1] }
    }

    /// The monomial `x`.
    pub fn x() -> PolyGf {
        PolyGf { coeffs: vec![0, 1] }
    }

    /// Coefficient slice, lowest degree first.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Coefficient of `x^i` (0 beyond the degree).
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// Degree; the zero polynomial has degree `-1`.
    pub fn degree(&self) -> i32 {
        self.coeffs.len() as i32 - 1
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Leading coefficient (0 for the zero polynomial).
    pub fn leading(&self) -> u64 {
        self.coeffs.last().copied().unwrap_or(0)
    }

    /// Polynomial addition.
    pub fn add(&self, field: &Field, rhs: &PolyGf) -> PolyGf {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(field.add(self.coeff(i), rhs.coeff(i)));
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        PolyGf { coeffs: out }
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, field: &Field, rhs: &PolyGf) -> PolyGf {
        if self.is_zero() || rhs.is_zero() {
            return PolyGf::zero();
        }
        let mut out = vec![0u64; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] = field.add(out[i + j], field.mul(a, b));
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        PolyGf { coeffs: out }
    }

    /// Scales every coefficient by `c`.
    pub fn scale(&self, field: &Field, c: u64) -> PolyGf {
        if c == 0 {
            return PolyGf::zero();
        }
        let coeffs = self.coeffs.iter().map(|&a| field.mul(a, c)).collect();
        PolyGf { coeffs }
    }

    /// Quotient and remainder of polynomial division.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] if `divisor` is zero.
    pub fn div_rem(&self, field: &Field, divisor: &PolyGf) -> Result<(PolyGf, PolyGf), GfError> {
        if divisor.is_zero() {
            return Err(GfError::DivisionByZero);
        }
        let dd = divisor.degree();
        let lead_inv = field.inv(divisor.leading())?;
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0u64; (self.degree() - dd + 1).max(0) as usize];
        while rem.len() as i32 > dd {
            let shift = rem.len() - 1 - dd as usize;
            let factor = field.mul(*rem.last().expect("nonempty"), lead_inv);
            quot[shift] = factor;
            for (i, &dc) in divisor.coeffs.iter().enumerate() {
                rem[shift + i] = field.add(rem[shift + i], field.mul(factor, dc));
            }
            while rem.last() == Some(&0) {
                rem.pop();
            }
        }
        let mut q = quot;
        while q.last() == Some(&0) {
            q.pop();
        }
        Ok((PolyGf { coeffs: q }, PolyGf { coeffs: rem }))
    }

    /// Remainder of polynomial division.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] if `divisor` is zero.
    pub fn rem(&self, field: &Field, divisor: &PolyGf) -> Result<PolyGf, GfError> {
        Ok(self.div_rem(field, divisor)?.1)
    }

    /// Monic greatest common divisor.
    pub fn gcd(&self, field: &Field, other: &PolyGf) -> PolyGf {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(field, &b).expect("b is non-zero");
            a = b;
            b = r;
        }
        if a.is_zero() {
            return a;
        }
        let li = field.inv(a.leading()).expect("non-zero leading");
        a.scale(field, li)
    }

    /// Modular product `self · rhs mod modulus`.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] if `modulus` is zero.
    pub fn mulmod(&self, field: &Field, rhs: &PolyGf, modulus: &PolyGf) -> Result<PolyGf, GfError> {
        self.mul(field, rhs).rem(field, modulus)
    }

    /// Modular exponentiation `self^e mod modulus`.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] if `modulus` is zero.
    pub fn powmod(&self, field: &Field, mut e: u128, modulus: &PolyGf) -> Result<PolyGf, GfError> {
        let mut base = self.rem(field, modulus)?;
        let mut acc = PolyGf::one().rem(field, modulus)?;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mulmod(field, &base, modulus)?;
            }
            base = base.mulmod(field, &base, modulus)?;
            e >>= 1;
        }
        Ok(acc)
    }

    /// Evaluates the polynomial at a field point (Horner).
    pub fn eval(&self, field: &Field, point: u64) -> u64 {
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = field.add(field.mul(acc, point), c);
        }
        acc
    }

    /// Rabin irreducibility test over GF(q), `q = 2^m`.
    ///
    /// `g` of degree `k ≥ 1` is irreducible over GF(q) iff
    /// `x^(q^k) ≡ x (mod g)` and for every prime divisor `p` of `k`,
    /// `gcd(x^(q^(k/p)) − x, g) = 1`.
    pub fn is_irreducible(&self, field: &Field) -> bool {
        let k = self.degree();
        if k < 1 {
            return false;
        }
        if k == 1 {
            return true;
        }
        let k = k as u32;
        let q: u128 = field.size();
        let frob = |steps: u32| -> PolyGf {
            // x^(q^steps) mod g via `steps` successive q-th powers.
            let mut t = PolyGf::x().rem(field, self).expect("self nonzero");
            for _ in 0..steps {
                t = t.powmod(field, q, self).expect("modulus nonzero");
            }
            t
        };
        let x_red = PolyGf::x().rem(field, self).expect("self nonzero");
        if frob(k) != x_red {
            return false;
        }
        for p in factor::prime_divisors(k as u128) {
            let h = frob(k / p as u32).add(field, &x_red);
            // h ≡ 0 means g divides x^(q^(k/p)) − x: all factors of g have
            // degree dividing k/p < k — reducible.
            if h.is_zero() || self.gcd(field, &h).degree() > 0 {
                return false;
            }
        }
        true
    }

    /// Multiplicative order of `x` modulo this polynomial, assuming the
    /// polynomial is irreducible with non-zero constant term. This equals
    /// the period of the LFSR whose characteristic polynomial is `self`.
    ///
    /// Returns `None` when the polynomial is reducible, constant, or has a
    /// zero constant term.
    pub fn order_of_x(&self, field: &Field) -> Option<u128> {
        let k = self.degree();
        if k < 1 || self.coeff(0) == 0 || !self.is_irreducible(field) {
            return None;
        }
        let q: u128 = field.size();
        let mut e = q.checked_pow(k as u32)? - 1;
        let one = PolyGf::one();
        for p in factor::prime_divisors(e) {
            loop {
                if e % p != 0 {
                    break;
                }
                let t = PolyGf::x().powmod(field, e / p, self).ok()?;
                if t == one {
                    e /= p;
                } else {
                    break;
                }
            }
        }
        Some(e)
    }

    /// `true` if the polynomial is primitive over GF(q): irreducible with
    /// `x` of maximal order `q^k − 1`.
    pub fn is_primitive(&self, field: &Field) -> bool {
        let k = self.degree();
        if k < 1 {
            return false;
        }
        let q: u128 = field.size();
        match self.order_of_x(field) {
            Some(o) => match q.checked_pow(k as u32) {
                Some(qk) => o == qk - 1,
                None => false,
            },
            None => false,
        }
    }
}

impl std::fmt::Display for PolyGf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match (i, c) {
                (0, c) => write!(f, "{c}")?,
                (1, 1) => write!(f, "x")?,
                (1, c) => write!(f, "{c}·x")?,
                (i, 1) => write!(f, "x^{i}")?,
                (i, c) => write!(f, "{c}·x^{i}")?,
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf16() -> Field {
        Field::new(4, 0b1_0011).unwrap()
    }

    #[test]
    fn construction_normalises_and_validates() {
        let f = gf16();
        let p = PolyGf::new(&f, vec![1, 2, 0, 0]).unwrap();
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1, 2]);
        assert!(matches!(PolyGf::new(&f, vec![16]), Err(GfError::CoefficientOutOfField { .. })));
        assert!(PolyGf::new(&f, vec![0, 0]).unwrap().is_zero());
    }

    #[test]
    fn add_and_mul_basic() {
        let f = gf16();
        let a = PolyGf::new(&f, vec![1, 2]).unwrap(); // 1 + 2x
        let b = PolyGf::new(&f, vec![3, 2]).unwrap(); // 3 + 2x
        assert_eq!(a.add(&f, &b).coeffs(), &[2]); // x-terms cancel
                                                  // (1+2x)(3+2x) = 3 + (2+6)x + 4x² = 3 + 4x + 4x²
                                                  // 2·3=6, so x coeff = 2+6=4; 2·2=4.
        assert_eq!(a.mul(&f, &b).coeffs(), &[3, 4, 4]);
    }

    #[test]
    fn div_rem_roundtrip() {
        let f = gf16();
        let a = PolyGf::new(&f, vec![5, 7, 1, 9, 3]).unwrap();
        let b = PolyGf::new(&f, vec![2, 0, 6]).unwrap();
        let (q, r) = a.div_rem(&f, &b).unwrap();
        let back = q.mul(&f, &b).add(&f, &r);
        assert_eq!(back, a);
        assert!(r.degree() < b.degree());
    }

    #[test]
    fn paper_generator_is_irreducible_over_gf16() {
        // The paper states g(x) = 1 + 2x + 2x² is irreducible "in the field
        // GF(2⁴)". Verify computationally.
        let f = gf16();
        let g = PolyGf::new(&f, vec![1, 2, 2]).unwrap();
        assert!(g.is_irreducible(&f));
    }

    #[test]
    fn paper_generator_period() {
        // Period of the associated LFSR = order of x mod g; must divide
        // 16² − 1 = 255.
        let f = gf16();
        let g = PolyGf::new(&f, vec![1, 2, 2]).unwrap();
        let o = g.order_of_x(&f).expect("irreducible");
        assert_eq!(255 % o, 0);
        assert!(o > 1);
    }

    #[test]
    fn reducible_quadratic_detected() {
        let f = gf16();
        // (x + 1)(x + 2) = x² + 3x + 2
        let r = PolyGf::new(&f, vec![2, 3, 1]).unwrap();
        assert!(!r.is_irreducible(&f));
        assert_eq!(r.order_of_x(&f), None);
        // Roots are 1 and 2.
        assert_eq!(r.eval(&f, 1), 0);
        assert_eq!(r.eval(&f, 2), 0);
    }

    #[test]
    fn linear_always_irreducible() {
        let f = gf16();
        let l = PolyGf::new(&f, vec![7, 1]).unwrap();
        assert!(l.is_irreducible(&f));
        assert!(!PolyGf::one().is_irreducible(&f));
        assert!(!PolyGf::zero().is_irreducible(&f));
    }

    #[test]
    fn powmod_consistency() {
        let f = gf16();
        let g = PolyGf::new(&f, vec![1, 2, 2]).unwrap();
        let x = PolyGf::x();
        // x^(a+b) = x^a · x^b mod g
        for a in 0..20u128 {
            for b in 0..20u128 {
                let lhs = x.powmod(&f, a + b, &g).unwrap();
                let rhs = x
                    .powmod(&f, a, &g)
                    .unwrap()
                    .mulmod(&f, &x.powmod(&f, b, &g).unwrap(), &g)
                    .unwrap();
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn gcd_detects_common_factor() {
        let f = gf16();
        let p = PolyGf::new(&f, vec![3, 1]).unwrap(); // x + 3
        let a = p.mul(&f, &PolyGf::new(&f, vec![1, 1]).unwrap());
        let b = p.mul(&f, &PolyGf::new(&f, vec![5, 0, 1]).unwrap());
        let g = a.gcd(&f, &b);
        assert_eq!(g, p); // already monic
    }

    #[test]
    fn eval_horner() {
        let f = gf16();
        let p = PolyGf::new(&f, vec![1, 2, 2]).unwrap();
        // g(0) = 1; g(1) = 1 + 2 + 2 = 1
        assert_eq!(p.eval(&f, 0), 1);
        assert_eq!(p.eval(&f, 1), 1);
        // No roots in GF(16) — irreducible quadratic.
        for a in 0..16u64 {
            assert_ne!(p.eval(&f, a), 0, "a={a}");
        }
    }

    #[test]
    fn display_format() {
        let f = gf16();
        let p = PolyGf::new(&f, vec![1, 2, 2]).unwrap();
        assert_eq!(p.to_string(), "1 + 2·x + 2·x^2");
        assert_eq!(PolyGf::zero().to_string(), "0");
    }

    #[test]
    fn primitivity_over_extension() {
        let f = gf16();
        // x² + x + 2: check order computation consistency with primitivity.
        let g = PolyGf::new(&f, vec![2, 1, 1]).unwrap();
        if g.is_irreducible(&f) {
            let o = g.order_of_x(&f).unwrap();
            assert_eq!(g.is_primitive(&f), o == 255);
        }
    }
}
