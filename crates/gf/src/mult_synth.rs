//! Synthesis of XOR-only networks for multiplication by a constant in
//! GF(2^m).
//!
//! The paper (§2) notes that "multiplication over Galois field extensions is
//! a more complex operation" and proposes "an algorithm to design the optimal
//! scheme of multiplication by a constant in GF. Multiplier by a constant
//! contains only XOR-gates and can be implemented inherently in the memory
//! circuit."
//!
//! Multiplication by a fixed `c ∈ GF(2^m)` is a GF(2)-linear map, so it is an
//! `m × m` bit-matrix ([`mult_matrix`]); each output bit is an XOR of a
//! subset of input bits. Two synthesis strategies are provided:
//!
//! * [`SynthesisStrategy::Naive`] — each output row is computed by its own
//!   chain of XORs (`popcount − 1` gates per row).
//! * [`SynthesisStrategy::Paar`] — greedy common-subexpression elimination
//!   (Paar's algorithm): the pair of signals that co-occurs in the most rows
//!   is factored into a shared intermediate gate, repeatedly. This is the
//!   "optimal scheme" construction of the paper (optimal within the greedy
//!   CSE family; exact optimality is NP-hard).
//!
//! The resulting [`XorNetwork`] can be *evaluated*, so equivalence with the
//! matrix is machine-checked rather than assumed.

use crate::field::Field;
use crate::matrix::BitMatrix;

/// A 2-input XOR gate; operand indices refer to the signal numbering of the
/// owning [`XorNetwork`] (signals `0..inputs` are primary inputs, subsequent
/// signals are gate outputs in order of creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XorGate {
    /// First operand signal index.
    pub a: usize,
    /// Second operand signal index.
    pub b: usize,
}

/// Strategy used by [`synthesize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthesisStrategy {
    /// Row-by-row XOR chains, no sharing.
    Naive,
    /// Greedy common-subexpression elimination (Paar). Default.
    #[default]
    Paar,
}

/// An XOR-only combinational network computing a GF(2)-linear map.
///
/// # Example
///
/// ```
/// use prt_gf::{Field, mult_synth};
///
/// let f = Field::new(4, 0b1_0011)?;
/// // Network multiplying by the paper's constant 2 (= z).
/// let net = mult_synth::for_constant(&f, 2, Default::default());
/// for x in 0..16u64 {
///     assert_eq!(net.eval(x as u128) as u64, f.mul(2, x));
/// }
/// # Ok::<(), prt_gf::GfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorNetwork {
    inputs: usize,
    gates: Vec<XorGate>,
    /// For each output bit: the signal index that drives it, or `None` when
    /// the output is constant zero.
    outputs: Vec<Option<usize>>,
}

impl XorNetwork {
    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of XOR gates — the hardware cost the paper's claim C5 is
    /// about.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The gate list in topological order.
    pub fn gates(&self) -> &[XorGate] {
        &self.gates
    }

    /// Output drivers (`None` = constant-zero output).
    pub fn outputs(&self) -> &[Option<usize>] {
        &self.outputs
    }

    /// Logic depth in XOR levels (0 for wire-only networks).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.inputs + self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            depth[self.inputs + i] = 1 + depth[g.a].max(depth[g.b]);
        }
        self.outputs.iter().flatten().map(|&s| depth[s]).max().unwrap_or(0)
    }

    /// Evaluates the network; bit `i` of `x` is input `i`, bit `j` of the
    /// result is output `j`.
    pub fn eval(&self, x: u128) -> u128 {
        let mut values = Vec::with_capacity(self.inputs + self.gates.len());
        for i in 0..self.inputs {
            values.push((x >> i) & 1 == 1);
        }
        for g in &self.gates {
            let v = values[g.a] ^ values[g.b];
            values.push(v);
        }
        let mut out = 0u128;
        for (j, drv) in self.outputs.iter().enumerate() {
            if let Some(s) = drv {
                if values[*s] {
                    out |= 1u128 << j;
                }
            }
        }
        out
    }

    /// Checks the network against a reference matrix on all basis vectors
    /// (sufficient for linear maps).
    pub fn equivalent_to(&self, matrix: &BitMatrix) -> bool {
        if matrix.ncols() as usize != self.inputs || matrix.nrows() != self.outputs.len() {
            return false;
        }
        (0..self.inputs).all(|i| self.eval(1u128 << i) == matrix.mul_vec(1u128 << i))
    }
}

/// Builds the `m × m` GF(2) matrix of the linear map `x ↦ c·x` in GF(2^m):
/// column `j` is the representation of `c · z^j`.
pub fn mult_matrix(field: &Field, c: u64) -> BitMatrix {
    let m = field.degree();
    let mut rows = vec![0u128; m as usize];
    for j in 0..m {
        let col = field.mul(c, 1u64 << j);
        for (i, row) in rows.iter_mut().enumerate() {
            if (col >> i) & 1 == 1 {
                *row |= 1u128 << j;
            }
        }
    }
    BitMatrix::from_rows(rows, m)
}

/// Number of XOR gates a naive (no-sharing) implementation of the matrix
/// needs: `Σ max(popcount(row) − 1, 0)`.
pub fn naive_gate_count(matrix: &BitMatrix) -> usize {
    (0..matrix.nrows()).map(|i| (matrix.row(i).count_ones() as usize).saturating_sub(1)).sum()
}

/// Synthesizes an XOR network computing `y = M·x` with the chosen strategy.
///
/// The returned network is verified against the matrix by construction in
/// debug builds.
pub fn synthesize(matrix: &BitMatrix, strategy: SynthesisStrategy) -> XorNetwork {
    let net = match strategy {
        SynthesisStrategy::Naive => synthesize_naive(matrix),
        SynthesisStrategy::Paar => synthesize_paar(matrix),
    };
    debug_assert!(net.equivalent_to(matrix), "synthesis produced a wrong network");
    net
}

/// Convenience wrapper: synthesize the multiplier network for `x ↦ c·x`.
pub fn for_constant(field: &Field, c: u64, strategy: SynthesisStrategy) -> XorNetwork {
    synthesize(&mult_matrix(field, c), strategy)
}

fn synthesize_naive(matrix: &BitMatrix) -> XorNetwork {
    let inputs = matrix.ncols() as usize;
    let mut gates = Vec::new();
    let mut outputs = Vec::with_capacity(matrix.nrows());
    for i in 0..matrix.nrows() {
        let mut row = matrix.row(i);
        if row == 0 {
            outputs.push(None);
            continue;
        }
        let mut acc = row.trailing_zeros() as usize;
        row &= row - 1;
        while row != 0 {
            let j = row.trailing_zeros() as usize;
            row &= row - 1;
            gates.push(XorGate { a: acc, b: j });
            acc = inputs + gates.len() - 1;
        }
        outputs.push(Some(acc));
    }
    XorNetwork { inputs, gates, outputs }
}

/// Paar's greedy CSE. Rows are maintained as bitsets over an *expanding*
/// signal set; the most frequent co-occurring signal pair is repeatedly
/// replaced by a fresh gate output.
fn synthesize_paar(matrix: &BitMatrix) -> XorNetwork {
    let inputs = matrix.ncols() as usize;
    let nrows = matrix.nrows();
    // Row bitsets over signals; use Vec<u64> blocks because the signal count
    // can exceed 128 once gates are added.
    let mut rows: Vec<Vec<u64>> = (0..nrows)
        .map(|i| {
            let r = matrix.row(i);
            vec![r as u64, (r >> 64) as u64]
        })
        .collect();
    let mut nsignals = inputs;
    let mut gates: Vec<XorGate> = Vec::new();

    let get = |rows: &[Vec<u64>], r: usize, s: usize| -> bool {
        rows[r].get(s / 64).is_some_and(|w| (w >> (s % 64)) & 1 == 1)
    };
    let set = |rows: &mut [Vec<u64>], r: usize, s: usize, v: bool| {
        let blk = s / 64;
        if blk >= rows[r].len() {
            rows[r].resize(blk + 1, 0);
        }
        if v {
            rows[r][blk] |= 1u64 << (s % 64);
        } else {
            rows[r][blk] &= !(1u64 << (s % 64));
        }
    };

    loop {
        // Find the signal pair present together in the most rows.
        let mut best: Option<(usize, usize, usize)> = None; // (count, a, b)
        for a in 0..nsignals {
            // Quick skip: signal not used anywhere.
            for b in (a + 1)..nsignals {
                let mut count = 0;
                for r in 0..nrows {
                    if get(&rows, r, a) && get(&rows, r, b) {
                        count += 1;
                    }
                }
                if count >= 2 {
                    match best {
                        Some((c, _, _)) if c >= count => {}
                        _ => best = Some((count, a, b)),
                    }
                }
            }
        }
        let Some((_, a, b)) = best else { break };
        gates.push(XorGate { a, b });
        let t = nsignals;
        nsignals += 1;
        for r in 0..nrows {
            if get(&rows, r, a) && get(&rows, r, b) {
                set(&mut rows, r, a, false);
                set(&mut rows, r, b, false);
                set(&mut rows, r, t, true);
            }
        }
    }

    // Finish remaining rows with private XOR chains.
    let mut outputs = Vec::with_capacity(nrows);
    for r in 0..nrows {
        let mut signals: Vec<usize> = (0..nsignals).filter(|&s| get(&rows, r, s)).collect();
        match signals.len() {
            0 => outputs.push(None),
            1 => outputs.push(Some(signals[0])),
            _ => {
                let mut acc = signals.remove(0);
                for s in signals {
                    gates.push(XorGate { a: acc, b: s });
                    acc = inputs + gates.len() - 1;
                }
                outputs.push(Some(acc));
            }
        }
    }
    XorNetwork { inputs, gates, outputs }
}

/// Summary of synthesis cost for one constant — one row of the paper-shaped
/// multiplier table (experiment E7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplierCost {
    /// The constant multiplied by.
    pub constant: u64,
    /// Gate count without sharing.
    pub naive_gates: usize,
    /// Gate count after greedy CSE.
    pub paar_gates: usize,
    /// Logic depth of the CSE network.
    pub depth: usize,
}

/// Computes naive vs optimised costs for every non-trivial constant of the
/// field (experiment E7 driver).
pub fn survey_field(field: &Field) -> Vec<MultiplierCost> {
    let mut out = Vec::new();
    for c in 2..field.size() as u64 {
        let m = mult_matrix(field, c);
        let net = synthesize(&m, SynthesisStrategy::Paar);
        out.push(MultiplierCost {
            constant: c,
            naive_gates: naive_gate_count(&m),
            paar_gates: net.gate_count(),
            depth: net.depth(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf16() -> Field {
        Field::new(4, 0b1_0011).unwrap()
    }

    #[test]
    fn mult_matrix_matches_field_mul() {
        let f = gf16();
        for c in 0..16u64 {
            let m = mult_matrix(&f, c);
            for x in 0..16u64 {
                assert_eq!(m.mul_vec(x as u128) as u64, f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn identity_constant_needs_no_gates() {
        let f = gf16();
        let net = for_constant(&f, 1, SynthesisStrategy::Paar);
        assert_eq!(net.gate_count(), 0);
        assert_eq!(net.depth(), 0);
    }

    #[test]
    fn zero_constant_gives_zero_network() {
        let f = gf16();
        let net = for_constant(&f, 0, SynthesisStrategy::Naive);
        assert_eq!(net.gate_count(), 0);
        for x in 0..16u64 {
            assert_eq!(net.eval(x as u128), 0);
        }
    }

    #[test]
    fn naive_equivalence_all_constants() {
        let f = gf16();
        for c in 0..16u64 {
            let m = mult_matrix(&f, c);
            let net = synthesize(&m, SynthesisStrategy::Naive);
            assert!(net.equivalent_to(&m), "c={c}");
            for x in 0..16u64 {
                assert_eq!(net.eval(x as u128) as u64, f.mul(c, x));
            }
        }
    }

    #[test]
    fn paar_equivalence_all_constants() {
        let f = gf16();
        for c in 0..16u64 {
            let m = mult_matrix(&f, c);
            let net = synthesize(&m, SynthesisStrategy::Paar);
            assert!(net.equivalent_to(&m), "c={c}");
            for x in 0..16u64 {
                assert_eq!(net.eval(x as u128) as u64, f.mul(c, x));
            }
        }
    }

    #[test]
    fn paar_never_worse_than_naive() {
        for m in 2..=8u32 {
            let f = Field::gf(m).unwrap();
            for cost in survey_field(&f) {
                assert!(
                    cost.paar_gates <= cost.naive_gates,
                    "m={m} c={}: paar {} > naive {}",
                    cost.constant,
                    cost.paar_gates,
                    cost.naive_gates
                );
            }
        }
    }

    #[test]
    fn paar_shares_subexpressions_in_gf256() {
        // In GF(2^8) some constants are known to benefit from sharing.
        let f = Field::gf(8).unwrap();
        let improved = survey_field(&f).iter().any(|c| c.paar_gates < c.naive_gates);
        assert!(improved, "CSE should improve at least one constant in GF(2^8)");
    }

    #[test]
    fn multiply_by_z_costs_at_most_weight_of_modulus() {
        // x ↦ z·x is a shift plus conditional XOR of p(z): row weights are
        // tiny. For p = z⁴+z+1 the naive cost is exactly weight(p)−2 = 1...
        // verified empirically rather than asserted analytically:
        let f = gf16();
        let m = mult_matrix(&f, 2);
        assert!(naive_gate_count(&m) <= 2);
    }

    #[test]
    fn depth_is_logarithmic_for_naive_chain() {
        // A full row of m ones gives a chain of depth m−1 in naive mode.
        let f = Field::gf(8).unwrap();
        for c in 2..=255u64 {
            let m = mult_matrix(&f, c);
            let naive = synthesize(&m, SynthesisStrategy::Naive);
            assert!(naive.depth() <= 7);
        }
    }

    #[test]
    fn eval_rejects_nothing_but_matches_linear_extension() {
        let f = gf16();
        let net = for_constant(&f, 11, SynthesisStrategy::Paar);
        // Linearity of the network itself.
        for x in 0..16u128 {
            for y in 0..16u128 {
                assert_eq!(net.eval(x ^ y), net.eval(x) ^ net.eval(y));
            }
        }
    }
}
