//! The compiled-program cache and the `Arc`-backed campaign runner.
//!
//! Compiling a March test to a [`TestProgram`] walks the notation once
//! per `(test, geometry, background)` — cheap, but a busy server sees
//! the same handful of configurations thousands of times, and a shard
//! fan-out would otherwise recompile per shard. [`ProgramCache`] compiles
//! each key **once** and `Arc`-shares the program with every job and
//! shard that needs it; cached programs are the *same allocation*, so
//! "cached verdicts equal freshly-compiled verdicts" holds by
//! construction and is additionally asserted over the wire in
//! `tests/service.rs`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use prt_march::{Executor, MarchTest};
use prt_ram::{Geometry, Ram, TestProgram};
use prt_sim::{CampaignError, FaultRunner};

/// A concurrent `(test name, geometry, background) → compiled program`
/// cache with a compile counter (the cache-health observable the service
/// smoke tests assert against).
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: Mutex<HashMap<(String, Geometry, u64), Arc<TestProgram>>>,
    compiles: AtomicUsize,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Number of real compilations this cache has run; a cache hit
    /// leaves the counter unchanged.
    pub fn compiles(&self) -> usize {
        self.compiles.load(Ordering::Relaxed)
    }

    /// The compiled program for `(test, geom, background)` — compiled on
    /// first request, shared (`Arc`) afterwards.
    pub fn get(&self, test: &MarchTest, geom: Geometry, background: u64) -> Arc<TestProgram> {
        let key = (test.name().to_string(), geom, background);
        let mut map = self.programs.lock().expect("program cache lock");
        if let Some(program) = map.get(&key) {
            return Arc::clone(program);
        }
        let program = Arc::new(Executor::new().with_background(background).compile(test, geom));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&program));
        Arc::clone(&program)
    }
}

/// A multi-background campaign runner over **cache-shared** programs —
/// the service's counterpart of `prt_sim::ProgramBank`, holding `Arc`s
/// from a [`ProgramCache`] instead of owned programs so a job's shards
/// all drive the identical compiled artifacts.
///
/// Implements [`FaultRunner`] on `&CachedBank` (the engine convention:
/// campaigns borrow their runner), with the bank's upfront validation so
/// configuration mismatches surface as typed errors before any trial.
#[derive(Debug)]
pub struct CachedBank {
    entries: Vec<(u64, Arc<TestProgram>)>,
}

impl CachedBank {
    /// A bank over `(background, program)` pairs.
    pub fn new(entries: Vec<(u64, Arc<TestProgram>)>) -> CachedBank {
        CachedBank { entries }
    }

    /// The program compiled for `background`, if any.
    pub fn program(&self, background: u64) -> Option<&TestProgram> {
        self.entries.iter().find(|(bg, _)| *bg == background).map(|(_, p)| &**p)
    }
}

impl FaultRunner for &CachedBank {
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        let program = self
            .program(background)
            .unwrap_or_else(|| panic!("no program compiled for background {background:#x}"));
        program.detect(ram)
    }

    fn batch_program(&self, background: u64) -> Option<&TestProgram> {
        self.program(background)
    }

    fn validate(
        &self,
        geom: Geometry,
        ports: usize,
        backgrounds: &[u64],
    ) -> Result<(), CampaignError> {
        for &bg in backgrounds {
            let Some(program) = self.program(bg) else {
                return Err(CampaignError::BadConfiguration {
                    reason: format!("no program compiled for background {bg:#x}"),
                });
            };
            if program.geometry() != geom {
                return Err(CampaignError::BadConfiguration {
                    reason: format!(
                        "program '{}' compiled for {:?} but the job targets {:?}",
                        program.name(),
                        program.geometry(),
                        geom
                    ),
                });
            }
            if program.ports() > ports {
                return Err(CampaignError::BadConfiguration {
                    reason: format!(
                        "program '{}' needs {} ports but the job pools {ports}",
                        program.name(),
                        program.ports()
                    ),
                });
            }
            if let Some(baked) = program.background() {
                if baked != bg {
                    return Err(CampaignError::BadConfiguration {
                        reason: format!(
                            "program '{}' bakes background {baked:#x}, job asked for {bg:#x}",
                            program.name()
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_march::library;
    use prt_ram::{FaultUniverse, UniverseSpec};
    use prt_sim::Campaign;

    #[test]
    fn repeat_get_shares_one_compile() {
        let cache = ProgramCache::new();
        let geom = Geometry::bom(16);
        let a = cache.get(&library::march_c_minus(), geom, 0);
        let b = cache.get(&library::march_c_minus(), geom, 0);
        assert!(Arc::ptr_eq(&a, &b), "repeat get must share the allocation");
        assert_eq!(cache.compiles(), 1);
        // Different background, geometry or test ⇒ different key.
        cache.get(&library::march_c_minus(), geom, 1);
        cache.get(&library::march_c_minus(), Geometry::bom(8), 0);
        cache.get(&library::mats_plus(), geom, 0);
        assert_eq!(cache.compiles(), 4);
    }

    #[test]
    fn cached_bank_matches_fresh_compilation() {
        // Bit-identical verdicts: a campaign driven by cache-shared
        // programs equals one driven by freshly compiled programs.
        let geom = Geometry::bom(12);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::full());
        let cache = ProgramCache::new();
        let backgrounds = [0u64, 0b1];
        let bank = CachedBank::new(
            backgrounds
                .iter()
                .map(|&bg| (bg, cache.get(&library::march_c_minus(), geom, bg)))
                .collect(),
        );
        let cached = Campaign::new(&universe, &bank).with_backgrounds(&backgrounds).detections();
        let fresh_bank = prt_sim::ProgramBank::new(backgrounds.map(|bg| {
            (bg, Executor::new().with_background(bg).compile(&library::march_c_minus(), geom))
        }));
        let fresh =
            Campaign::new(&universe, &fresh_bank).with_backgrounds(&backgrounds).detections();
        assert_eq!(cached, fresh);
        assert_eq!(cache.compiles(), backgrounds.len());
    }

    #[test]
    fn cached_bank_validates_upfront() {
        let geom = Geometry::bom(8);
        let cache = ProgramCache::new();
        let bank = CachedBank::new(vec![(0, cache.get(&library::mats(), geom, 0))]);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
        // Unknown background is a typed error, not a worker panic.
        let err = Campaign::new(&universe, &bank).with_backgrounds(&[0, 3]).try_run();
        assert!(err.is_err(), "unknown background must be refused upfront");
        // Wrong geometry likewise.
        let other = FaultUniverse::enumerate(Geometry::bom(4), &UniverseSpec::single_cell());
        assert!(Campaign::new(&other, &bank).try_run().is_err());
    }
}
