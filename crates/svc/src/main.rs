//! The `prt-svc` server binary: bind, print the resolved address, and
//! serve until killed.
//!
//! ```text
//! prt-svc [ADDR]           # default 127.0.0.1:7177
//! ```
//!
//! Environment knobs: `PRT_SVC_WORKERS`, `PRT_SVC_SEGMENT`,
//! `PRT_SVC_SHARD` (see [`prt_svc::ServerConfig`]) and `PRT_SVC_STORE`
//! (directory for disk-persisted dictionaries).

use prt_svc::cli::{arg_or, die, env_or};
use prt_svc::{Server, ServerConfig, DEFAULT_POLY_BITS};

fn main() {
    let addr: String = arg_or(1, "127.0.0.1:7177".to_string(), "listen address");
    let config = ServerConfig {
        addr,
        workers_per_job: env_or("PRT_SVC_WORKERS", 0),
        segment: env_or("PRT_SVC_SEGMENT", 512),
        shard: env_or("PRT_SVC_SHARD", 8192),
        store_dir: std::env::var_os("PRT_SVC_STORE").map(Into::into),
        poly_bits: DEFAULT_POLY_BITS,
    };
    let handle = match Server::spawn(config) {
        Ok(handle) => handle,
        Err(e) => die(format!("prt-svc: bind failed: {e}")),
    };
    println!("prt-svc listening on {}", handle.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}
