//! Demo/smoke client for a running `prt-svc` server: streams N
//! concurrent campaign jobs, verifies each delta stream is a monotone
//! tiling of the universe, then queries the fault dictionary twice and
//! asserts the second query is a cache hit. Exits nonzero on any
//! violation — CI runs this as the service smoke step.
//!
//! ```text
//! svc-demo [ADDR] [JOBS]   # defaults 127.0.0.1:7177, 2 jobs
//! ```

use std::thread;
use std::time::Duration;

use prt_ram::UniverseSpec;
use prt_svc::cli::{arg_or, die};
use prt_svc::{Client, JobSpec, LookupSpec, StopKind};

/// Streams one job and checks the delta invariants; returns the number
/// of deltas received.
fn verify_stream(addr: &str, job: &JobSpec) -> Result<usize, String> {
    let client = Client::connect_retry(addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let stream = client.submit(job).map_err(|e| format!("submit: {e}"))?;
    let total = stream.total();
    if total == 0 {
        return Err("server accepted an empty universe".to_string());
    }
    let (deltas, done) = stream.drain().map_err(|e| format!("stream: {e}"))?;
    let mut cursor = 0u64;
    let mut counted = 0u64;
    for (i, delta) in deltas.iter().enumerate() {
        if delta.seq != i as u64 {
            return Err(format!("delta {i} has sequence {}", delta.seq));
        }
        if delta.start != cursor || delta.end <= delta.start {
            return Err(format!(
                "delta {i} [{}, {}) breaks the tiling at cursor {cursor}",
                delta.start, delta.end
            ));
        }
        cursor = delta.end;
        let rows: u64 = delta.rows.iter().map(|r| r.total).sum();
        if rows != delta.end - delta.start {
            return Err(format!(
                "delta {i} rows sum to {rows}, segment wants {}",
                delta.end - delta.start
            ));
        }
        counted += rows;
    }
    if done.cause != StopKind::Complete {
        return Err(format!("job stopped early: {:?}", done.cause));
    }
    if done.evaluated != total || cursor != total || counted != total {
        return Err(format!(
            "aggregate mismatch: evaluated {} / tiled {cursor} / counted {counted} of {total}",
            done.evaluated
        ));
    }
    Ok(deltas.len())
}

fn main() {
    let addr: String = arg_or(1, "127.0.0.1:7177".to_string(), "server address");
    let jobs: usize = arg_or(2, 2, "concurrent jobs");
    if jobs == 0 {
        die("need at least one job");
    }

    let job = JobSpec {
        family: "March C-".to_string(),
        cells: 64,
        width: 1,
        spec: UniverseSpec::full(),
        backgrounds: vec![0],
        lane_width: 0,
        deadline_ms: 0,
        segment: 1024,
        topology: None,
    };

    // N clients stream the same job concurrently — the shard scheduler
    // must interleave them without conflating their streams.
    let streams: Vec<_> = (0..jobs)
        .map(|j| {
            let addr = addr.clone();
            let job = job.clone();
            thread::spawn(move || verify_stream(&addr, &job).map_err(|e| format!("job {j}: {e}")))
        })
        .collect();
    let mut delta_count = 0;
    for handle in streams {
        match handle.join() {
            Ok(Ok(n)) => delta_count += n,
            Ok(Err(e)) => die(e),
            Err(_) => die("job thread panicked"),
        }
    }

    // Dictionary: the second identical query must be served from cache.
    let lookup = LookupSpec {
        family: "MATS+".to_string(),
        cells: 16,
        width: 1,
        spec: UniverseSpec::single_cell(),
        signature: 0,
        prefix_bits: 0,
    };
    let mut client = Client::connect_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| die(format!("connect {addr}: {e}")));
    let first = client.lookup(&lookup).unwrap_or_else(|e| die(format!("lookup: {e}")));
    let second = client.lookup(&lookup).unwrap_or_else(|e| die(format!("lookup: {e}")));
    if second.builds != first.builds {
        die(format!(
            "repeat dictionary query rebuilt: builds {} -> {}",
            first.builds, second.builds
        ));
    }
    if second.reference != first.reference {
        die("repeat dictionary query changed the reference signature");
    }

    println!(
        "svc-demo: {jobs} concurrent streams complete ({delta_count} deltas); \
         dictionary cached (builds={})",
        second.builds
    );
}
