//! `prt-svc` — a sharded, streaming, cache-backed campaign and
//! diagnosis server for the PRT suite.
//!
//! The suite's batch tools answer "what does this March test cover?"
//! one process at a time. This crate turns the same engines into a
//! long-running **service**: clients submit campaign jobs (geometry,
//! fault-universe spec, test family, lane width, deadline) over a
//! length-prefixed TCP protocol ([`proto`]); the server shards each
//! job's universe into lane-chunk segments across a worker pool and
//! **streams** per-segment coverage deltas back as they complete, so a
//! million-fault sweep reports progress from its first segment instead
//! of going dark until the end. Two caches keep repeat work free:
//! compiled [`prt_ram::TestProgram`]s are shared per
//! `(family, geometry, background)` ([`cache::ProgramCache`]), and
//! fault dictionaries are built once, optionally persisted to disk, and
//! `Arc`-shared across queries ([`prt_diag::DictionaryStore`]).
//!
//! Everything is `std`-only — the wire protocol is hand-rolled frames,
//! the server is `std::net` + `std::thread` — because the workspace
//! builds with no registry access.
//!
//! # Quick start
//!
//! Run a server (defaults to `127.0.0.1:0` in-process; the binary
//! defaults to port 7177):
//!
//! ```text
//! cargo run --release -p prt-svc -- 127.0.0.1:7177
//! ```
//!
//! then stream a couple of concurrent jobs through it and exercise the
//! dictionary cache:
//!
//! ```text
//! cargo run --release -p prt-svc --bin svc-demo -- 127.0.0.1:7177 2
//! ```
//!
//! Knobs (environment): `PRT_SVC_WORKERS` (worker threads per job, `0`
//! = auto), `PRT_SVC_SEGMENT` (streaming segment length, default 512),
//! `PRT_SVC_SHARD` (shard length, default 8192), `PRT_SVC_STORE` (disk
//! directory for persisted dictionaries).
//!
//! In-process, the same server is three lines — this is how the
//! integration tests drive it:
//!
//! ```
//! use prt_svc::{Client, JobSpec, Server, ServerConfig};
//! use prt_ram::UniverseSpec;
//! use std::time::Duration;
//!
//! let server = Server::spawn(ServerConfig::default()).unwrap();
//! let client = Client::connect(server.addr()).unwrap();
//! let job = JobSpec {
//!     family: "MATS+".into(),
//!     cells: 8,
//!     width: 1,
//!     spec: UniverseSpec::single_cell(),
//!     backgrounds: vec![0],
//!     lane_width: 0,
//!     deadline_ms: 0,
//!     segment: 16,
//!     topology: None,
//! };
//! let stream = client.submit(&job).unwrap();
//! assert!(stream.total() > 0);
//! let (deltas, done) = stream.drain().unwrap();
//! assert_eq!(done.evaluated, done.total);
//! assert_eq!(deltas.last().unwrap().end, done.total);
//! ```
//!
//! The wire framing, job lifecycle, shard/stream semantics and cache
//! keys are specified in `DESIGN.md` (service architecture section);
//! [`server`] documents the lifecycle from the implementation side.

pub mod cache;
pub mod cli;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{CachedBank, ProgramCache};
pub use client::{Client, JobStream, SvcError};
pub use proto::{
    CoverageDelta, DeltaRow, Event, JobDone, JobSpec, LookupReply, LookupSpec, StopKind,
};
pub use server::{Server, ServerConfig, ServerHandle, DEFAULT_POLY_BITS};
