//! The wire protocol: length-prefixed frames of a tagged binary payload.
//!
//! Every message on the socket is one **frame**: a little-endian `u32`
//! payload length followed by that many payload bytes, capped at
//! [`MAX_FRAME`] (an oversized length is corruption or a hostile peer —
//! refused loudly, never allocated). The payload starts with a one-byte
//! tag selecting the message, then fixed-order fields: integers are
//! little-endian, strings are a `u16` byte length plus UTF-8, and lists
//! are a `u32` element count plus elements. There is no negotiation and
//! no versioning handshake — the protocol is an internal seam between
//! `prt-svc`'s server and client halves, exercised end-to-end by the
//! round-trip tests below and `tests/service.rs`.
//!
//! Requests (client → server): [`Request::Submit`] streams one campaign
//! job and then consumes the connection; [`Request::Lookup`] answers a
//! `signature → candidates` dictionary query and leaves the connection
//! open for more requests. Events (server → client) are in
//! [`Event`]; any single in-band byte sent by the client *during* a
//! streaming job is a cancellation request (the server does not parse
//! it — its arrival is the signal).

use std::io::{self, Read, Write};

use prt_ram::{Scrambler, Topology, TopologyStage, UniverseSpec};

/// Hard ceiling on one frame's payload, enforced on both ends before any
/// allocation. Generously above every real message (the largest — a
/// candidate list for a pathological signature bucket — is far smaller).
pub const MAX_FRAME: usize = 1 << 20;

/// A malformed payload: truncated fields, an unknown tag, invalid UTF-8,
/// or trailing garbage. Carries a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(reason: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(reason.into()))
}

/// Writes one frame: `u32` LE length + payload.
///
/// # Panics
///
/// Panics when `payload` exceeds [`MAX_FRAME`] — the encoder produced a
/// frame the decoder is contractually bound to refuse, a programming
/// error on this side, not an I/O condition.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds MAX_FRAME ({} bytes)", MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` on a clean EOF **before** the
/// length prefix (the peer closed between messages); an EOF mid-frame or
/// an oversized length is an `InvalidData` error — truncation and
/// corruption are never silently absorbed.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < 4 {
                let n = r.read(&mut len[got..])?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "connection closed mid frame header",
                    ));
                }
                got += n;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("truncated frame: {e}")))?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Payload primitives.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string field exceeds u16 length");
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

/// Sequential payload reader with loud truncation errors.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return err(format!("truncated {what}"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err(format!("{what} is not UTF-8")),
        }
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return err(format!("{} trailing bytes after {what}", self.buf.len() - self.pos));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Universe spec ⇄ flags word.

const F_SAF: u16 = 1 << 0;
const F_TF: u16 = 1 << 1;
const F_CFIN: u16 = 1 << 2;
const F_CFID: u16 = 1 << 3;
const F_CFST: u16 = 1 << 4;
const F_AF: u16 = 1 << 5;
const F_SOF: u16 = 1 << 6;
const F_RDF: u16 = 1 << 7;
const F_DRDF: u16 = 1 << 8;
const F_IRF: u16 = 1 << 9;
const F_WDF: u16 = 1 << 10;
const F_INTRA: u16 = 1 << 12;
const F_RADIUS: u16 = 1 << 15;
const F_KNOWN: u16 = F_SAF
    | F_TF
    | F_CFIN
    | F_CFID
    | F_CFST
    | F_AF
    | F_SOF
    | F_RDF
    | F_DRDF
    | F_IRF
    | F_WDF
    | F_INTRA
    | F_RADIUS;

fn put_spec(out: &mut Vec<u8>, spec: &UniverseSpec) {
    let mut flags = 0u16;
    let mut set = |on: bool, bit: u16| {
        if on {
            flags |= bit;
        }
    };
    set(spec.saf, F_SAF);
    set(spec.tf, F_TF);
    set(spec.cfin, F_CFIN);
    set(spec.cfid, F_CFID);
    set(spec.cfst, F_CFST);
    set(spec.af, F_AF);
    set(spec.sof, F_SOF);
    set(spec.rdf, F_RDF);
    set(spec.drdf, F_DRDF);
    set(spec.irf, F_IRF);
    set(spec.wdf, F_WDF);
    set(spec.intra_word, F_INTRA);
    set(spec.coupling_radius.is_some(), F_RADIUS);
    put_u16(out, flags);
    if let Some(r) = spec.coupling_radius {
        put_u64(out, r as u64);
    }
}

fn read_spec(rd: &mut Rd<'_>) -> Result<UniverseSpec, WireError> {
    let flags = rd.u16("universe flags")?;
    if flags & !F_KNOWN != 0 {
        return err(format!("unknown universe flags {:#06x}", flags & !F_KNOWN));
    }
    let coupling_radius = if flags & F_RADIUS != 0 {
        let r = rd.u64("coupling radius")?;
        Some(usize::try_from(r).map_err(|_| WireError("coupling radius overflow".into()))?)
    } else {
        None
    };
    Ok(UniverseSpec {
        saf: flags & F_SAF != 0,
        tf: flags & F_TF != 0,
        cfin: flags & F_CFIN != 0,
        cfid: flags & F_CFID != 0,
        cfst: flags & F_CFST != 0,
        af: flags & F_AF != 0,
        sof: flags & F_SOF != 0,
        rdf: flags & F_RDF != 0,
        drdf: flags & F_DRDF != 0,
        irf: flags & F_IRF != 0,
        wdf: flags & F_WDF != 0,
        coupling_radius,
        intra_word: flags & F_INTRA != 0,
    })
}

// ---------------------------------------------------------------------
// Topology ⇄ stage-structured blob (v2 Submit frames only).

const STAGE_SWIZZLE: u8 = 0;
const STAGE_INTERLEAVE: u8 = 1;
const STAGE_FOLD: u8 = 2;
const STAGE_TWIST: u8 = 3;
const STAGE_TABLE: u8 = 4;

/// Encodes a topology stage-structurally (the swizzle/interleave/fold/
/// twist parameters, not expanded permutation tables), so even a
/// many-stage topology over a large array stays far under [`MAX_FRAME`];
/// only an explicit [`TopologyStage::Table`] pays per-cell space.
fn put_topology(out: &mut Vec<u8>, topology: &Topology) {
    put_u64(out, topology.cells() as u64);
    put_u16(out, topology.stages().len() as u16);
    for stage in topology.stages() {
        match stage {
            TopologyStage::Swizzle(s) => {
                out.push(STAGE_SWIZZLE);
                put_u16(out, s.bits() as u16);
                for &(src, invert) in s.table() {
                    put_u16(out, src as u16);
                    out.push(invert as u8);
                }
            }
            TopologyStage::Interleave { rows, cols } => {
                out.push(STAGE_INTERLEAVE);
                put_u64(out, *rows as u64);
                put_u64(out, *cols as u64);
            }
            TopologyStage::Fold => out.push(STAGE_FOLD),
            TopologyStage::Twist { rows, cols } => {
                out.push(STAGE_TWIST);
                put_u64(out, *rows as u64);
                put_u64(out, *cols as u64);
            }
            TopologyStage::Table { fwd, .. } => {
                out.push(STAGE_TABLE);
                put_u32(out, fwd.len() as u32);
                for &p in fwd {
                    put_u64(out, p as u64);
                }
            }
        }
    }
}

/// Decodes and **validates** a topology blob: every stage is rebuilt
/// through [`Topology::then`]'s own bijection checks, so a hostile or
/// corrupt frame cannot smuggle in a non-permutation.
fn read_topology(rd: &mut Rd<'_>) -> Result<Topology, WireError> {
    let cells = rd.u64("topology cells")?;
    let cells = usize::try_from(cells).map_err(|_| WireError("topology cells overflow".into()))?;
    let stages = rd.u16("topology stage count")?;
    let mut topology = Topology::identity(cells);
    let glue = |e: prt_ram::RamError| WireError(format!("invalid topology stage: {e}"));
    for _ in 0..stages {
        topology = match rd.u8("topology stage tag")? {
            STAGE_SWIZZLE => {
                let bits = rd.u16("swizzle bits")? as u32;
                if bits > 64 {
                    return err(format!("swizzle width {bits} exceeds 64 bits"));
                }
                let mut map = Vec::with_capacity(bits as usize);
                for _ in 0..bits {
                    let src = rd.u16("swizzle source bit")? as u32;
                    let invert = match rd.u8("swizzle invert flag")? {
                        0 => false,
                        1 => true,
                        other => return err(format!("bad swizzle invert flag {other}")),
                    };
                    map.push((src, invert));
                }
                let s = Scrambler::from_table(map).map_err(glue)?;
                topology.then_swizzle(s).map_err(glue)?
            }
            STAGE_INTERLEAVE => {
                let rows = rd.u64("interleave rows")? as usize;
                let cols = rd.u64("interleave cols")? as usize;
                topology.then_interleave(rows, cols).map_err(glue)?
            }
            STAGE_FOLD => topology.then_fold().map_err(glue)?,
            STAGE_TWIST => {
                let rows = rd.u64("twist rows")? as usize;
                let cols = rd.u64("twist cols")? as usize;
                topology.then_twist(rows, cols).map_err(glue)?
            }
            STAGE_TABLE => {
                let n = rd.u32("table length")? as usize;
                if n > MAX_FRAME / 8 {
                    return err("table length exceeds frame capacity");
                }
                let mut fwd = Vec::with_capacity(n);
                for _ in 0..n {
                    fwd.push(rd.u64("table entry")? as usize);
                }
                topology.then_table(fwd).map_err(glue)?
            }
            other => return err(format!("unknown topology stage tag {other:#04x}")),
        };
    }
    Ok(topology)
}

// ---------------------------------------------------------------------
// Messages.

/// One streamed campaign job: which test, which device, which universe.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// March-library test name, e.g. `"March C-"` (matched against
    /// `prt_march::library` names).
    pub family: String,
    /// Addressable cells of the device under test.
    pub cells: u64,
    /// Word width in bits (`1` = bit-oriented memory).
    pub width: u32,
    /// The fault universe to shard and sweep.
    pub spec: UniverseSpec,
    /// Data backgrounds (one compiled program per entry; a fault counts
    /// as detected when any background flags it). Must be non-empty.
    pub backgrounds: Vec<u64>,
    /// Lane-chunk width: `0` = server default, else 64 / 256 / 512.
    pub lane_width: u16,
    /// Time budget in milliseconds (`0` = none). An expired budget ends
    /// the stream with a `Deadline` [`JobDone`], not an error.
    pub deadline_ms: u64,
    /// Streaming segment length in trials (`0` = server default): one
    /// [`CoverageDelta`] per completed segment.
    pub segment: u32,
    /// Physical address topology of the device under test: the fault
    /// universe is enumerated over physical coordinates and mapped back
    /// to the logical addresses the test drives. `None` = identity
    /// (logical = physical). A `Some` topology upgrades the Submit frame
    /// to the v2 encoding; v1 frames always decode as `None`, so old
    /// clients keep working against new servers and vice versa.
    pub topology: Option<Topology>,
}

/// One dictionary query: which configuration, which failing signature.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupSpec {
    /// March-library test name the dictionary is built over.
    pub family: String,
    /// Addressable cells.
    pub cells: u64,
    /// Word width in bits (`1` = bit-oriented).
    pub width: u32,
    /// The fault universe the dictionary inverts.
    pub spec: UniverseSpec,
    /// The failing MISR signature to look up.
    pub signature: u64,
    /// Signature-prefix compression width (`0` = full signatures).
    pub prefix_bits: u32,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a campaign and stream its coverage; consumes the connection.
    Submit(JobSpec),
    /// Answer a dictionary lookup; the connection stays open.
    Lookup(LookupSpec),
}

/// One fault class's contribution to a [`CoverageDelta`]: counts **within
/// the delta's segment only** (the client accumulates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRow {
    /// Fault-class mnemonic (`"SAF"`, `"TF"`, …).
    pub class: String,
    /// Detected instances of this class in the segment.
    pub detected: u64,
    /// Total instances of this class in the segment.
    pub total: u64,
}

/// One completed segment of the streamed campaign. Deltas arrive in
/// order and tile the evaluated prefix: each `start` equals the previous
/// delta's `end` (the first has `start == 0`), so their per-class sums
/// reconstruct the batch-mode coverage report exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageDelta {
    /// Monotonic sequence number, from 0.
    pub seq: u64,
    /// First universe index of the segment (inclusive).
    pub start: u64,
    /// One past the last universe index (exclusive).
    pub end: u64,
    /// Per-class counts for `[start, end)`, in first-seen class order.
    pub rows: Vec<DeltaRow>,
}

/// Why a job's stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopKind {
    /// The whole universe was evaluated.
    Complete,
    /// The job's time budget expired.
    Deadline,
    /// The job was cancelled (in-band byte or client disconnect).
    Cancelled,
}

/// Terminal job event: how far the sweep got and why it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDone {
    /// Universe prefix evaluated (== `total` iff `Complete`).
    pub evaluated: u64,
    /// Universe size.
    pub total: u64,
    /// Why the stream ended.
    pub cause: StopKind,
    /// Lane batches that degraded to the scalar oracle.
    pub degraded: u64,
}

/// Dictionary lookup reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupReply {
    /// Universe indices of the candidate faults.
    pub candidates: Vec<u64>,
    /// The candidate faults, rendered (`FaultKind` display form).
    pub faults: Vec<String>,
    /// The server store's build counter **after** this query — a repeat
    /// query must come back with the same number (cache hit, no
    /// rebuild), which `tests/service.rs` asserts over the wire.
    pub builds: u64,
    /// The dictionary's fault-free reference signature.
    pub reference: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A submitted job was validated and scheduled; `total` universe
    /// instances will be swept.
    Accepted {
        /// Universe size of the accepted job.
        total: u64,
    },
    /// One completed segment's coverage.
    Delta(CoverageDelta),
    /// The job's stream ended.
    Done(JobDone),
    /// A lookup's candidate set.
    Candidates(LookupReply),
    /// The request was refused or the job failed.
    Error {
        /// Coarse class: 1 = malformed/unsupported request, 2 = campaign
        /// or dictionary failure.
        code: u16,
        /// Human-readable reason.
        message: String,
    },
}

const TAG_SUBMIT: u8 = 0x01;
const TAG_LOOKUP: u8 = 0x02;
/// v2 Submit: the v1 layout plus a trailing topology blob. A separate
/// tag (rather than a version byte) keeps v1 frames byte-identical, so
/// the protocol bump is invisible to identity-topology traffic.
const TAG_SUBMIT_V2: u8 = 0x03;
const TAG_ACCEPTED: u8 = 0x81;
const TAG_DELTA: u8 = 0x82;
const TAG_DONE: u8 = 0x83;
const TAG_CANDIDATES: u8 = 0x84;
const TAG_ERROR: u8 = 0x7F;

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Submit(job) => {
                out.push(if job.topology.is_some() { TAG_SUBMIT_V2 } else { TAG_SUBMIT });
                put_str(&mut out, &job.family);
                put_u64(&mut out, job.cells);
                put_u32(&mut out, job.width);
                put_spec(&mut out, &job.spec);
                put_u32(&mut out, job.backgrounds.len() as u32);
                for &bg in &job.backgrounds {
                    put_u64(&mut out, bg);
                }
                put_u16(&mut out, job.lane_width);
                put_u64(&mut out, job.deadline_ms);
                put_u32(&mut out, job.segment);
                if let Some(topology) = &job.topology {
                    put_topology(&mut out, topology);
                }
            }
            Request::Lookup(spec) => {
                out.push(TAG_LOOKUP);
                put_str(&mut out, &spec.family);
                put_u64(&mut out, spec.cells);
                put_u32(&mut out, spec.width);
                put_spec(&mut out, &spec.spec);
                put_u64(&mut out, spec.signature);
                put_u32(&mut out, spec.prefix_bits);
            }
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an unknown tag, truncation, invalid UTF-8 or
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut rd = Rd::new(payload);
        let tag = rd.u8("request tag")?;
        let req = match tag {
            TAG_SUBMIT | TAG_SUBMIT_V2 => {
                let family = rd.str("family")?;
                let cells = rd.u64("cells")?;
                let width = rd.u32("width")?;
                let spec = read_spec(&mut rd)?;
                let n = rd.u32("background count")? as usize;
                if n > MAX_FRAME / 8 {
                    return err("background count exceeds frame capacity");
                }
                let mut backgrounds = Vec::with_capacity(n);
                for _ in 0..n {
                    backgrounds.push(rd.u64("background")?);
                }
                let lane_width = rd.u16("lane width")?;
                let deadline_ms = rd.u64("deadline")?;
                let segment = rd.u32("segment")?;
                let topology =
                    if tag == TAG_SUBMIT_V2 { Some(read_topology(&mut rd)?) } else { None };
                Request::Submit(JobSpec {
                    family,
                    cells,
                    width,
                    spec,
                    backgrounds,
                    lane_width,
                    deadline_ms,
                    segment,
                    topology,
                })
            }
            TAG_LOOKUP => {
                let family = rd.str("family")?;
                let cells = rd.u64("cells")?;
                let width = rd.u32("width")?;
                let spec = read_spec(&mut rd)?;
                let signature = rd.u64("signature")?;
                let prefix_bits = rd.u32("prefix bits")?;
                Request::Lookup(LookupSpec { family, cells, width, spec, signature, prefix_bits })
            }
            other => return err(format!("unknown request tag {other:#04x}")),
        };
        rd.finish("request")?;
        Ok(req)
    }
}

impl Event {
    /// Serializes the event into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Event::Accepted { total } => {
                out.push(TAG_ACCEPTED);
                put_u64(&mut out, *total);
            }
            Event::Delta(delta) => {
                out.push(TAG_DELTA);
                put_u64(&mut out, delta.seq);
                put_u64(&mut out, delta.start);
                put_u64(&mut out, delta.end);
                put_u32(&mut out, delta.rows.len() as u32);
                for row in &delta.rows {
                    put_str(&mut out, &row.class);
                    put_u64(&mut out, row.detected);
                    put_u64(&mut out, row.total);
                }
            }
            Event::Done(done) => {
                out.push(TAG_DONE);
                put_u64(&mut out, done.evaluated);
                put_u64(&mut out, done.total);
                out.push(match done.cause {
                    StopKind::Complete => 0,
                    StopKind::Deadline => 1,
                    StopKind::Cancelled => 2,
                });
                put_u64(&mut out, done.degraded);
            }
            Event::Candidates(reply) => {
                out.push(TAG_CANDIDATES);
                put_u32(&mut out, reply.candidates.len() as u32);
                for &c in &reply.candidates {
                    put_u64(&mut out, c);
                }
                put_u32(&mut out, reply.faults.len() as u32);
                for fault in &reply.faults {
                    put_str(&mut out, fault);
                }
                put_u64(&mut out, reply.builds);
                put_u64(&mut out, reply.reference);
            }
            Event::Error { code, message } => {
                out.push(TAG_ERROR);
                put_u16(&mut out, *code);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an unknown tag, truncation, invalid UTF-8 or
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Event, WireError> {
        let mut rd = Rd::new(payload);
        let tag = rd.u8("event tag")?;
        let event = match tag {
            TAG_ACCEPTED => Event::Accepted { total: rd.u64("total")? },
            TAG_DELTA => {
                let seq = rd.u64("seq")?;
                let start = rd.u64("start")?;
                let end = rd.u64("end")?;
                let n = rd.u32("row count")? as usize;
                if n > MAX_FRAME / 8 {
                    return err("row count exceeds frame capacity");
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(DeltaRow {
                        class: rd.str("class")?,
                        detected: rd.u64("detected")?,
                        total: rd.u64("row total")?,
                    });
                }
                Event::Delta(CoverageDelta { seq, start, end, rows })
            }
            TAG_DONE => {
                let evaluated = rd.u64("evaluated")?;
                let total = rd.u64("total")?;
                let cause = match rd.u8("cause")? {
                    0 => StopKind::Complete,
                    1 => StopKind::Deadline,
                    2 => StopKind::Cancelled,
                    other => return err(format!("unknown stop cause {other}")),
                };
                let degraded = rd.u64("degraded")?;
                Event::Done(JobDone { evaluated, total, cause, degraded })
            }
            TAG_CANDIDATES => {
                let n = rd.u32("candidate count")? as usize;
                if n > MAX_FRAME / 8 {
                    return err("candidate count exceeds frame capacity");
                }
                let mut candidates = Vec::with_capacity(n);
                for _ in 0..n {
                    candidates.push(rd.u64("candidate")?);
                }
                let m = rd.u32("fault count")? as usize;
                if m > MAX_FRAME / 2 {
                    return err("fault count exceeds frame capacity");
                }
                let mut faults = Vec::with_capacity(m);
                for _ in 0..m {
                    faults.push(rd.str("fault")?);
                }
                let builds = rd.u64("builds")?;
                let reference = rd.u64("reference")?;
                Event::Candidates(LookupReply { candidates, faults, builds, reference })
            }
            TAG_ERROR => {
                let code = rd.u16("error code")?;
                let message = rd.str("error message")?;
                Event::Error { code, message }
            }
            other => return err(format!("unknown event tag {other:#04x}")),
        };
        rd.finish("event")?;
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn round_trip_event(event: Event) {
        assert_eq!(Event::decode(&event.encode()).unwrap(), event);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Submit(JobSpec {
            family: "March C-".into(),
            cells: 1 << 20,
            width: 1,
            spec: UniverseSpec::full(),
            backgrounds: vec![0, 0b1010],
            lane_width: 512,
            deadline_ms: 30_000,
            segment: 4096,
            topology: None,
        }));
        round_trip_request(Request::Submit(JobSpec {
            family: "MATS+".into(),
            cells: 16,
            width: 8,
            spec: UniverseSpec { coupling_radius: Some(3), ..UniverseSpec::paper_claim() },
            backgrounds: vec![0],
            lane_width: 0,
            deadline_ms: 0,
            segment: 0,
            topology: None,
        }));
        // v2: every stage kind survives the wire, including a multi-stage
        // composition — and the validated decode equals the original.
        let topology = Topology::identity(64)
            .then_swizzle(Scrambler::reversed(6))
            .unwrap()
            .then_interleave(8, 8)
            .unwrap()
            .then_fold()
            .unwrap()
            .then_twist(16, 4)
            .unwrap()
            .then_table((0..64).rev().collect())
            .unwrap();
        round_trip_request(Request::Submit(JobSpec {
            family: "March C-".into(),
            cells: 64,
            width: 1,
            spec: UniverseSpec::paper_claim(),
            backgrounds: vec![0],
            lane_width: 0,
            deadline_ms: 0,
            segment: 0,
            topology: Some(topology),
        }));
        round_trip_request(Request::Lookup(LookupSpec {
            family: "March C-D".into(),
            cells: 64,
            width: 1,
            spec: UniverseSpec::paper_claim(),
            signature: 0xDEAD_BEEF_CAFE,
            prefix_bits: 6,
        }));
    }

    #[test]
    fn events_round_trip() {
        round_trip_event(Event::Accepted { total: 123_456 });
        round_trip_event(Event::Delta(CoverageDelta {
            seq: 7,
            start: 4096,
            end: 8192,
            rows: vec![
                DeltaRow { class: "SAF".into(), detected: 100, total: 128 },
                DeltaRow { class: "TF".into(), detected: 0, total: 64 },
            ],
        }));
        for cause in [StopKind::Complete, StopKind::Deadline, StopKind::Cancelled] {
            round_trip_event(Event::Done(JobDone {
                evaluated: 99,
                total: 100,
                cause,
                degraded: 1,
            }));
        }
        round_trip_event(Event::Candidates(LookupReply {
            candidates: vec![3, 17, 99],
            faults: vec!["SA0@3".into(), "SA1@17".into()],
            builds: 2,
            reference: 0xAB,
        }));
        round_trip_event(Event::Error { code: 1, message: "unknown family 'March Z'".into() });
    }

    #[test]
    fn v1_submit_frames_decode_as_identity_topology() {
        // A pre-topology client's Submit frame — hand-built with the v1
        // tag and layout — must decode as `topology: None`, and a job
        // without a topology must still *encode* to that exact v1 frame:
        // the protocol bump is invisible to identity traffic.
        let job = JobSpec {
            family: "March C-".into(),
            cells: 32,
            width: 1,
            spec: UniverseSpec::paper_claim(),
            backgrounds: vec![0, 5],
            lane_width: 256,
            deadline_ms: 1000,
            segment: 128,
            topology: None,
        };
        let mut v1 = Vec::new();
        v1.push(0x01);
        put_str(&mut v1, "March C-");
        put_u64(&mut v1, 32);
        put_u32(&mut v1, 1);
        put_spec(&mut v1, &UniverseSpec::paper_claim());
        put_u32(&mut v1, 2);
        put_u64(&mut v1, 0);
        put_u64(&mut v1, 5);
        put_u16(&mut v1, 256);
        put_u64(&mut v1, 1000);
        put_u32(&mut v1, 128);
        assert_eq!(Request::decode(&v1).unwrap(), Request::Submit(job.clone()));
        assert_eq!(Request::Submit(job).encode(), v1);
    }

    #[test]
    fn hostile_topology_blobs_are_refused() {
        let encode = |topology: &Topology| {
            let mut out = Vec::new();
            put_topology(&mut out, topology);
            out
        };
        let job = |blob: Vec<u8>| {
            let mut out = Vec::new();
            out.push(0x03);
            put_str(&mut out, "MATS");
            put_u64(&mut out, 8);
            put_u32(&mut out, 1);
            put_spec(&mut out, &UniverseSpec::single_cell());
            put_u32(&mut out, 1);
            put_u64(&mut out, 0);
            put_u16(&mut out, 0);
            put_u64(&mut out, 0);
            put_u32(&mut out, 0);
            out.extend_from_slice(&blob);
            out
        };
        let good = Topology::identity(8).then_table(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        assert!(Request::decode(&job(encode(&good))).is_ok());
        // A table that is not a permutation must be refused by the
        // decoder's validation, not accepted as-is.
        let mut forged = encode(&good);
        let last = forged.len() - 8;
        forged[last..].copy_from_slice(&7u64.to_le_bytes()); // 7 appears twice
        assert!(Request::decode(&job(forged)).is_err(), "non-bijection accepted");
        // A stage whose cell count disagrees with the topology is refused.
        let mut out = vec![];
        put_u64(&mut out, 8); // cells
        put_u16(&mut out, 1); // one stage
        out.push(1); // interleave
        put_u64(&mut out, 3);
        put_u64(&mut out, 3); // 3×3 ≠ 8
        assert!(Request::decode(&job(out)).is_err(), "mis-sized interleave accepted");
        // Truncated mid-stage is truncation, not a short topology.
        let mut short = encode(&good);
        short.truncate(short.len() - 3);
        assert!(Request::decode(&job(short)).is_err(), "truncated blob accepted");
    }

    #[test]
    fn malformed_payloads_are_refused() {
        assert!(Request::decode(&[]).is_err(), "empty payload");
        assert!(Request::decode(&[0x55]).is_err(), "unknown tag");
        let mut ok = Request::Lookup(LookupSpec {
            family: "MATS".into(),
            cells: 8,
            width: 1,
            spec: UniverseSpec::single_cell(),
            signature: 1,
            prefix_bits: 0,
        })
        .encode();
        ok.push(0); // trailing garbage
        assert!(Request::decode(&ok).is_err(), "trailing bytes");
        assert!(Request::decode(&ok[..ok.len() - 3]).is_err(), "truncation");
    }

    #[test]
    fn frames_round_trip_and_refuse_oversize() {
        let payload = Event::Accepted { total: 9 }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut rd = &buf[..];
        assert_eq!(read_frame(&mut rd).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut rd).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut rd).unwrap(), None, "clean EOF between frames");
        // An oversized length prefix is refused before allocation.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // EOF mid-frame is corruption, not a clean close.
        let truncated = [5u8, 0, 0, 0, 1, 2];
        assert!(read_frame(&mut &truncated[..]).is_err());
    }
}
