//! A blocking client for the campaign service: submit a job and pull
//! its event stream, or run dictionary lookups over a persistent
//! connection.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{
    read_frame, write_frame, CoverageDelta, Event, JobDone, JobSpec, LookupReply, LookupSpec,
    Request, WireError,
};

/// Client-side failure: transport, framing, or a server-reported error.
#[derive(Debug)]
pub enum SvcError {
    /// The underlying socket failed.
    Io(io::Error),
    /// A frame arrived but did not decode.
    Wire(WireError),
    /// The server answered with an [`Event::Error`] frame.
    Server {
        /// Server error code (`1` = bad request, `2` = execution failure).
        code: u16,
        /// Human-readable reason.
        message: String,
    },
    /// The server broke the protocol (wrong event for the state, or the
    /// stream ended before its terminal event).
    Protocol(String),
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Io(e) => write!(f, "service i/o: {e}"),
            SvcError::Wire(e) => write!(f, "service wire: {e}"),
            SvcError::Server { code, message } => write!(f, "server error {code}: {message}"),
            SvcError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for SvcError {}

impl From<io::Error> for SvcError {
    fn from(e: io::Error) -> SvcError {
        SvcError::Io(e)
    }
}

impl From<WireError> for SvcError {
    fn from(e: WireError) -> SvcError {
        SvcError::Wire(e)
    }
}

/// Reads and decodes one event frame; `Ok(None)` when the peer closed
/// cleanly between frames.
fn read_event(stream: &mut TcpStream) -> Result<Option<Event>, SvcError> {
    match read_frame(stream)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Event::decode(&payload)?)),
    }
}

/// A connected client. Lookups can repeat on one connection;
/// [`Client::submit`] consumes the client (one streaming job per
/// connection, mirroring the server).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects, retrying every 50 ms until `timeout` — for scripts that
    /// race a freshly spawned server (e.g. the CI smoke step).
    ///
    /// # Errors
    ///
    /// The last connect error once the timeout elapses.
    pub fn connect_retry(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Runs one dictionary lookup; the connection stays usable.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or the server's refusal.
    pub fn lookup(&mut self, spec: &LookupSpec) -> Result<LookupReply, SvcError> {
        write_frame(&mut self.stream, &Request::Lookup(spec.clone()).encode())?;
        match read_event(&mut self.stream)? {
            Some(Event::Candidates(reply)) => Ok(reply),
            Some(Event::Error { code, message }) => Err(SvcError::Server { code, message }),
            Some(other) => Err(SvcError::Protocol(format!("expected candidates, got {other:?}"))),
            None => Err(SvcError::Protocol("connection closed before reply".into())),
        }
    }

    /// Submits a campaign job and waits for its acceptance, turning the
    /// connection into the job's event stream.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or the server's refusal of the job.
    pub fn submit(mut self, job: &JobSpec) -> Result<JobStream, SvcError> {
        write_frame(&mut self.stream, &Request::Submit(job.clone()).encode())?;
        match read_event(&mut self.stream)? {
            Some(Event::Accepted { total }) => {
                Ok(JobStream { stream: self.stream, total, finished: false })
            }
            Some(Event::Error { code, message }) => Err(SvcError::Server { code, message }),
            Some(other) => Err(SvcError::Protocol(format!("expected accepted, got {other:?}"))),
            None => Err(SvcError::Protocol("connection closed before acceptance".into())),
        }
    }
}

/// An accepted job's event stream. Dropping the stream mid-job closes
/// the connection, which the server treats as a cancellation.
#[derive(Debug)]
pub struct JobStream {
    stream: TcpStream,
    total: u64,
    finished: bool,
}

impl JobStream {
    /// Universe size the server committed to in its acceptance.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The next delta or the terminal [`Event::Done`]; `Ok(None)` once
    /// the stream has delivered its terminal event.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, a server [`Event::Error`], or a
    /// connection that dies before its terminal event.
    pub fn next_event(&mut self) -> Result<Option<Event>, SvcError> {
        if self.finished {
            return Ok(None);
        }
        match read_event(&mut self.stream)? {
            Some(Event::Done(done)) => {
                self.finished = true;
                Ok(Some(Event::Done(done)))
            }
            Some(Event::Error { code, message }) => {
                self.finished = true;
                Err(SvcError::Server { code, message })
            }
            Some(delta @ Event::Delta(_)) => Ok(Some(delta)),
            Some(other) => Err(SvcError::Protocol(format!("unexpected mid-stream {other:?}"))),
            None => Err(SvcError::Protocol("stream closed before its Done event".into())),
        }
    }

    /// Requests cancellation: any in-band byte tells the server to stop
    /// the job at the next chunk boundary. Keep pulling events — the
    /// stream still ends with a `Done` (cause `Cancelled`, unless the
    /// sweep won the race and completed).
    ///
    /// # Errors
    ///
    /// The write error, verbatim.
    pub fn cancel(&mut self) -> io::Result<()> {
        self.stream.write_all(&[0])
    }

    /// Drains the stream to completion, collecting every delta and the
    /// terminal summary.
    ///
    /// # Errors
    ///
    /// Any [`Self::next_event`] failure, verbatim.
    pub fn drain(mut self) -> Result<(Vec<CoverageDelta>, JobDone), SvcError> {
        let mut deltas = Vec::new();
        loop {
            match self.next_event()? {
                Some(Event::Delta(delta)) => deltas.push(delta),
                Some(Event::Done(done)) => return Ok((deltas, done)),
                Some(other) => {
                    return Err(SvcError::Protocol(format!("unexpected mid-stream {other:?}")))
                }
                None => unreachable!("next_event yields Done before None"),
            }
        }
    }
}
