//! The campaign/diagnosis server: accept loop, per-connection sessions,
//! the sharded streaming job driver and the lookup path.
//!
//! # Job lifecycle
//!
//! A [`crate::proto::Request::Submit`] is validated upfront (family,
//! geometry, backgrounds, lane width — refusals are
//! [`Event::Error`] frames, never half-started jobs), answered with
//! [`Event::Accepted`], then driven to completion on the session's
//! thread: the fault universe is split into **shards** of at most
//! `ServerConfig::shard` instances, each shard runs as one
//! [`Campaign`] over the job's worker pool, and every completed
//! **segment** (`ServerConfig::segment` trials, or the job's override)
//! streams one [`Event::Delta`] back over the live connection via the
//! campaign's progress hook. The stream ends with one
//! [`Event::Done`] carrying the evaluated prefix, the stop cause and
//! the degradation counter; the server then closes the connection — one
//! streaming job per connection.
//!
//! Dense universes (no coupling classes) are sharded **lazily** through
//! [`LazyUniverse`]: a `n ≥ 2²⁰` job materializes one shard's fault
//! instances at a time, never the whole universe.
//!
//! # Cancellation and disconnects
//!
//! Each job arms a [`CancelToken`]. A watchdog thread blocks reading
//! the job's connection: **any** in-band byte is a client cancel
//! request, and EOF or a reset is a disconnect — both fire the token,
//! the campaign stops at the next chunk boundary, and the shard workers
//! are freed for other jobs. A dead client never pins the worker pool
//! (chaos-tested in `tests/resilience.rs`).

use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::cache::{CachedBank, ProgramCache};
use crate::proto::{
    read_frame, write_frame, CoverageDelta, DeltaRow, Event, JobDone, JobSpec, LookupReply,
    LookupSpec, Request, StopKind,
};
use prt_diag::DictionaryStore;
use prt_gf::Poly2;
use prt_march::{library, MarchTest};
use prt_ram::{FaultKind, FaultUniverse, Geometry, LazyUniverse, Topology};
use prt_sim::{Campaign, CancelToken, LaneWidth, Parallelism, SegmentProgress, StopCause};

/// The default MISR polynomial for dictionary lookups (`x⁸+x⁴+x³+x+1`,
/// the suite-wide 8-bit compaction default).
pub const DEFAULT_POLY_BITS: u64 = 0b1_0001_1011;

/// Server tuning knobs. `Default` is a loopback server on an
/// OS-assigned port with in-memory caches.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`"127.0.0.1:0"` = loopback, OS-assigned port).
    pub addr: String,
    /// Worker threads per job's shard campaigns (`0` = auto: the
    /// engine's own sizing).
    pub workers_per_job: usize,
    /// Default streaming segment length in trials (a job's `segment`
    /// field overrides; clamped to ≥ 1).
    pub segment: usize,
    /// Shard length in universe instances: lazy universes materialize
    /// at most this many faults at a time (clamped to ≥ 1).
    pub shard: usize,
    /// Disk tier for the dictionary store (`None` = in-memory only).
    pub store_dir: Option<std::path::PathBuf>,
    /// MISR polynomial bits for dictionary lookups.
    pub poly_bits: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers_per_job: 0,
            segment: 512,
            shard: 8192,
            store_dir: None,
            poly_bits: DEFAULT_POLY_BITS,
        }
    }
}

/// State shared by the accept loop and every session.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    poly: Poly2,
    programs: ProgramCache,
    dicts: DictionaryStore,
    active_jobs: AtomicUsize,
    shutdown: AtomicBool,
}

/// The spawn half of the service: binds, accepts, and hands each
/// connection to a session thread.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the accept loop on a background
    /// thread. The returned handle owns the server: dropping it (or
    /// calling [`ServerHandle::shutdown`]) stops accepting; sessions
    /// already streaming run to completion.
    ///
    /// # Errors
    ///
    /// The bind error, verbatim.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poly = Poly2::from_bits(u128::from(config.poly_bits));
        let dicts = match &config.store_dir {
            Some(dir) => DictionaryStore::persistent(dir),
            None => DictionaryStore::in_memory(),
        };
        let shared = Arc::new(Shared {
            config,
            poly,
            programs: ProgramCache::new(),
            dicts,
            active_jobs: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            loop {
                if accept_shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // The listener is non-blocking so the accept loop
                        // can poll shutdown; sessions must block.
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        let session_shared = Arc::clone(&accept_shared);
                        thread::spawn(move || session(stream, session_shared));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        Ok(ServerHandle { addr, shared, accept: Some(accept) })
    }
}

/// A running server: address, cache/health observables, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs currently streaming. A disconnected client's job leaves
    /// this counter as soon as its cancellation lands — the observable
    /// the resilience chaos test drains to zero.
    pub fn active_jobs(&self) -> usize {
        self.shared.active_jobs.load(Ordering::Relaxed)
    }

    /// Real compilations the program cache has run (cache hits don't
    /// count).
    pub fn program_compiles(&self) -> usize {
        self.shared.programs.compiles()
    }

    /// Real universe simulations the dictionary store has run (memory
    /// and disk hits don't count).
    pub fn dictionary_builds(&self) -> usize {
        self.shared.dicts.builds()
    }

    /// Stops accepting connections and joins the accept loop. Sessions
    /// already streaming complete on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decrements `active_jobs` on every exit path of a job.
struct JobGuard<'a>(&'a AtomicUsize);

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Writes one event frame to the connection.
fn send_event(stream: &TcpStream, event: &Event) -> io::Result<()> {
    let mut w = stream;
    write_frame(&mut w, &event.encode())
}

/// One connection: lookups repeat until a submit arrives; the submit
/// streams its job and then the connection closes.
fn session(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(mut reader) = stream.try_clone() else { return };
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        match Request::decode(&payload) {
            Err(e) => {
                let _ = send_event(&stream, &Event::Error { code: 1, message: e.to_string() });
                return;
            }
            Ok(Request::Lookup(spec)) => {
                let event = match handle_lookup(&shared, &spec) {
                    Ok(reply) => Event::Candidates(reply),
                    Err((code, message)) => Event::Error { code, message },
                };
                if send_event(&stream, &event).is_err() {
                    return;
                }
            }
            Ok(Request::Submit(job)) => {
                run_job(stream, reader, &shared, job);
                return;
            }
        }
    }
}

/// Resolves a March-library test by its display name.
fn resolve_family(name: &str) -> Option<MarchTest> {
    let mut tests = library::all();
    tests.push(library::march_diag());
    tests.into_iter().find(|t| t.name() == name)
}

/// Builds the device geometry from wire fields.
fn make_geometry(cells: u64, width: u32) -> Result<Geometry, String> {
    let cells = usize::try_from(cells).map_err(|_| "cell count overflows this host".to_string())?;
    if cells == 0 {
        return Err("memory must have at least one cell".to_string());
    }
    Geometry::wom(cells, width.max(1)).map_err(|e| e.to_string())
}

/// Per-class counts of one completed segment, in first-seen class order
/// (`faults` is the **shard** slice; `seg` indexes into it).
fn delta_rows(faults: &[FaultKind], seg: &SegmentProgress<'_>) -> Vec<DeltaRow> {
    let mut rows: Vec<DeltaRow> = Vec::new();
    for (k, &verdict) in seg.verdicts.iter().enumerate() {
        let class = faults[seg.start + k].mnemonic();
        match rows.iter_mut().find(|r| r.class == class) {
            Some(row) => {
                row.total += 1;
                row.detected += u64::from(verdict);
            }
            None => rows.push(DeltaRow {
                class: class.to_string(),
                detected: u64::from(verdict),
                total: 1,
            }),
        }
    }
    rows
}

/// Validates, accepts and drives one submitted job, streaming deltas
/// over `stream`; `reader` (a clone of the same socket) becomes the
/// disconnect watchdog. Consumes the connection.
fn run_job(stream: TcpStream, reader: TcpStream, shared: &Shared, job: JobSpec) {
    let refuse = |code: u16, message: String| {
        let _ = send_event(&stream, &Event::Error { code, message });
    };
    let Some(test) = resolve_family(&job.family) else {
        return refuse(1, format!("unknown test family '{}'", job.family));
    };
    let geom = match make_geometry(job.cells, job.width) {
        Ok(geom) => geom,
        Err(reason) => return refuse(1, reason),
    };
    if job.backgrounds.is_empty() {
        return refuse(1, "at least one data background required".to_string());
    }
    let lane_width = match job.lane_width {
        0 => None,
        64 => Some(LaneWidth::X64),
        256 => Some(LaneWidth::X256),
        512 => Some(LaneWidth::X512),
        other => return refuse(1, format!("unsupported lane width {other} (64/256/512)")),
    };

    // Physical topology: validated against the geometry up front, then
    // threaded into the enumeration (faults keep logical addresses, so
    // the campaign engine itself is topology-blind).
    let topology = match &job.topology {
        Some(t) if t.cells() != geom.cells() => {
            return refuse(
                1,
                format!("topology covers {} cells but the device has {}", t.cells(), geom.cells()),
            );
        }
        Some(t) => t.clone(),
        None => Topology::identity(geom.cells()),
    };

    // Universe: lazy sharding for every spec — coupling families
    // enumerate through the O(1)-memory pair arithmetic, so no job
    // materializes its universe up front (the topology applies per
    // decoded index, keeping the O(1) contract under scrambling).
    let lazy = LazyUniverse::new_with(geom, job.spec, topology.clone());
    let total = lazy.len();

    // Programs from the shared cache — every shard (and every concurrent
    // job with this configuration) drives the same compiled artifacts.
    let programs: Vec<(u64, Arc<prt_ram::TestProgram>)> =
        job.backgrounds.iter().map(|&bg| (bg, shared.programs.get(&test, geom, bg))).collect();
    let ports = programs.iter().map(|(_, p)| p.ports()).max().unwrap_or(1);
    let bank = CachedBank::new(programs);

    if send_event(&stream, &Event::Accepted { total: total as u64 }).is_err() {
        return;
    }

    shared.active_jobs.fetch_add(1, Ordering::Relaxed);
    let _guard = JobGuard(&shared.active_jobs);

    // Watchdog: any in-band byte is a cancel request, EOF/reset is a
    // disconnect — either way the token fires and the shard workers are
    // freed at the next chunk boundary.
    let token = CancelToken::new();
    let watchdog = {
        let token = token.clone();
        thread::spawn(move || {
            let mut byte = [0u8; 1];
            let _ = (&reader).read(&mut byte);
            token.cancel();
        })
    };

    let segment = if job.segment == 0 { shared.config.segment } else { job.segment as usize };
    let segment = segment.max(1);
    let shard_len = shared.config.shard.max(1);
    let parallelism = match shared.config.workers_per_job {
        0 => Parallelism::Auto,
        n => Parallelism::Threads(n),
    };
    let deadline = (job.deadline_ms > 0).then(|| Duration::from_millis(job.deadline_ms));
    let started = Instant::now();
    let seq = AtomicU64::new(0);
    let write_failed = AtomicBool::new(false);

    let mut evaluated = 0usize;
    let mut degraded = 0usize;
    let mut cause = StopKind::Complete;
    let mut lo = 0usize;
    while lo < total {
        let hi = (lo + shard_len).min(total);
        let shard_faults: Vec<FaultKind> = lazy.slice(lo, hi);
        let sf = &shard_faults;
        let stream_ref = &stream;
        let seq_ref = &seq;
        let failed_ref = &write_failed;
        let sink_token = token.clone();
        let mut campaign = Campaign::over(geom, sf, &bank)
            .with_topology(topology.clone())
            .with_backgrounds(&job.backgrounds)
            .with_ports(ports)
            .with_parallelism(parallelism)
            .with_name(format!("svc:{}", job.family))
            .with_cancel(&token)
            .with_progress(segment, move |seg: SegmentProgress<'_>| {
                let delta = CoverageDelta {
                    seq: seq_ref.fetch_add(1, Ordering::Relaxed),
                    start: (lo + seg.start) as u64,
                    end: (lo + seg.end) as u64,
                    rows: delta_rows(sf, &seg),
                };
                if send_event(stream_ref, &Event::Delta(delta)).is_err() {
                    // The client is gone: stop paying for its sweep.
                    failed_ref.store(true, Ordering::Relaxed);
                    sink_token.cancel();
                }
            });
        if let Some(width) = lane_width {
            campaign = campaign.with_lane_width(width);
        }
        if let Some(budget) = deadline {
            match budget.checked_sub(started.elapsed()) {
                Some(remaining) => campaign = campaign.with_deadline(remaining),
                None => {
                    cause = StopKind::Deadline;
                    break;
                }
            }
        }
        let report = match campaign.try_run() {
            Ok(report) => report,
            Err(e) => {
                return finish_job(&stream, watchdog, |s| {
                    let _ = send_event(s, &Event::Error { code: 2, message: e.to_string() });
                });
            }
        };
        degraded += report.degraded_batches();
        match report.partial() {
            None => {
                evaluated = hi;
                lo = hi;
            }
            Some(partial) => {
                evaluated = lo + partial.evaluated;
                cause = match partial.cause {
                    StopCause::DeadlineExceeded => StopKind::Deadline,
                    StopCause::Cancelled => StopKind::Cancelled,
                };
                break;
            }
        }
    }

    finish_job(&stream, watchdog, |s| {
        let done = JobDone {
            evaluated: evaluated as u64,
            total: total as u64,
            cause,
            degraded: degraded as u64,
        };
        let _ = send_event(s, &Event::Done(done));
    });
}

/// Writes the terminal event, closes the socket (which also wakes the
/// watchdog out of its blocking read) and joins the watchdog.
fn finish_job(
    stream: &TcpStream,
    watchdog: thread::JoinHandle<()>,
    terminal: impl FnOnce(&TcpStream),
) {
    terminal(stream);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = watchdog.join();
}

/// Answers one dictionary query from the shared store.
fn handle_lookup(shared: &Shared, spec: &LookupSpec) -> Result<LookupReply, (u16, String)> {
    let Some(test) = resolve_family(&spec.family) else {
        return Err((1, format!("unknown test family '{}'", spec.family)));
    };
    let geom = make_geometry(spec.cells, spec.width).map_err(|reason| (1, reason))?;
    let universe = FaultUniverse::enumerate(geom, &spec.spec);
    let program = shared.programs.get(&test, geom, 0);
    let full = shared
        .dicts
        .get_or_build(&universe, &program, shared.poly, Parallelism::Auto)
        .map_err(|e| (2, e.to_string()))?;
    let dict = if spec.prefix_bits == 0 {
        full
    } else {
        if spec.prefix_bits > full.collector().width() {
            return Err((
                1,
                format!(
                    "prefix width {} exceeds the {}-bit MISR",
                    spec.prefix_bits,
                    full.collector().width()
                ),
            ));
        }
        shared
            .dicts
            .get_compressed(&universe, &program, shared.poly, Parallelism::Auto, spec.prefix_bits)
            .map_err(|e| (2, e.to_string()))?
    };
    let candidates = dict.candidates(spec.signature);
    Ok(LookupReply {
        candidates: candidates.iter().map(|&i| i as u64).collect(),
        faults: candidates.iter().map(|&i| dict.faults()[i].to_string()).collect(),
        builds: shared.dicts.builds() as u64,
        reference: dict.reference(),
    })
}
