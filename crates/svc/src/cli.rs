//! CLI plumbing shared by the server binaries (`prt-svc`, `svc-demo`):
//! loud argument/environment parsing. Bad input must never abort via an
//! `unwrap` backtrace (useless in a CI log) or, worse, fall back
//! silently to a default experiment.

/// Prints `error: <message>` to stderr and exits with a nonzero code.
pub fn die(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses positional CLI argument `n` (1-based, as in `env::args`) as a
/// `T`, using `default` when the argument is absent. A *present but
/// malformed* argument is a usage error: the binary exits nonzero with a
/// message naming the parameter.
pub fn arg_or<T>(n: usize, default: T, what: &str) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match std::env::args().nth(n) {
        None => default,
        Some(raw) => {
            raw.parse().unwrap_or_else(|e| die(format!("invalid {what} argument '{raw}': {e}")))
        }
    }
}

/// Parses environment variable `name` as a `T`, using `default` when it
/// is unset. A set-but-malformed value exits nonzero, like [`arg_or`].
pub fn env_or<T>(name: &str, default: T) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => {
            raw.parse().unwrap_or_else(|e| die(format!("invalid {name} value '{raw}': {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_argument_and_env_use_defaults() {
        assert_eq!(arg_or(500, 42usize, "n"), 42);
        assert_eq!(env_or("PRT_SVC_SURELY_UNSET_VAR", 7u32), 7);
    }
}
