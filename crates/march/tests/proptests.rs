//! Property-based tests for the March engine.

use proptest::prelude::*;
use prt_march::{library, parse, AddrOrder, Executor, MarchElement, MarchTest, Op};
use prt_ram::{Geometry, Ram};

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::R0), Just(Op::R1), Just(Op::W0), Just(Op::W1)]
}

fn arb_order() -> impl Strategy<Value = AddrOrder> {
    prop_oneof![Just(AddrOrder::Up), Just(AddrOrder::Down), Just(AddrOrder::Any)]
}

fn arb_test() -> impl Strategy<Value = MarchTest> {
    prop::collection::vec((arb_order(), prop::collection::vec(arb_op(), 1..6)), 1..6).prop_map(
        |els| {
            MarchTest::new(
                "generated",
                els.into_iter().map(|(order, ops)| MarchElement::new(order, ops)).collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Display → parse is the identity for arbitrary well-formed tests.
    #[test]
    fn notation_roundtrip(test in arb_test()) {
        let reparsed = parse(test.name(), &test.to_string()).unwrap();
        prop_assert_eq!(reparsed, test);
    }

    /// Op accounting is exact for arbitrary tests and sizes.
    #[test]
    fn op_count_exact(test in arb_test(), n in 1usize..40) {
        let mut ram = Ram::new(Geometry::bom(n));
        let outcome = Executor::new().run(&test, &mut ram);
        prop_assert_eq!(outcome.ops(), test.total_ops(n));
        prop_assert_eq!(ram.stats().ops(), test.total_ops(n));
    }

    /// A test whose first element initialises (write-only) never reports a
    /// fault on a fault-free memory, for any background.
    #[test]
    fn no_false_positives_when_initialised(
        ops in prop::collection::vec(arb_op(), 1..8),
        n in 1usize..32,
        bg in 0u64..2,
    ) {
        let mut elements = vec![MarchElement::new(AddrOrder::Any, vec![Op::W0])];
        // Force reads to be consistent: after w0, expected value tracking
        // must match the executor's own model — build a self-consistent
        // element by replaying writes.
        let mut last = prt_march::Logic::Zero;
        let fixed: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Write(d) => {
                    last = d;
                    Op::Write(d)
                }
                Op::Read(_) => Op::Read(last),
            })
            .collect();
        elements.push(MarchElement::new(AddrOrder::Up, fixed));
        let test = MarchTest::new("self-consistent", elements);
        let mut ram = Ram::new(Geometry::bom(n));
        let outcome = Executor::new().with_background(bg).run(&test, &mut ram);
        prop_assert!(!outcome.detected(), "{}", test);
    }

    /// Every library test detects every stuck-at fault at any site
    /// (SAF coverage is the minimum bar for all of them).
    #[test]
    fn all_library_tests_catch_saf(idx in 0usize..12, cell in 0usize..16, value in 0u8..2) {
        let tests = library::all();
        let test = &tests[idx];
        let mut ram = Ram::new(Geometry::bom(16));
        ram.inject(prt_ram::FaultKind::StuckAt { cell, bit: 0, value }).unwrap();
        let outcome = Executor::new().stop_at_first_mismatch().run(test, &mut ram);
        prop_assert!(outcome.detected(), "{} missed SA{value}@{cell}", test.name());
    }

    /// stop_at_first never changes the verdict, only the op count.
    #[test]
    fn early_stop_same_verdict(cell in 0usize..12, rising in any::<bool>()) {
        let fault = prt_ram::FaultKind::Transition { cell, bit: 0, rising };
        let t = library::march_c_minus();
        let mut a = Ram::new(Geometry::bom(12));
        a.inject(fault.clone()).unwrap();
        let full = Executor::new().run(&t, &mut a);
        let mut b = Ram::new(Geometry::bom(12));
        b.inject(fault).unwrap();
        let early = Executor::new().stop_at_first_mismatch().run(&t, &mut b);
        prop_assert_eq!(full.detected(), early.detected());
        prop_assert!(early.ops() <= full.ops());
    }
}
