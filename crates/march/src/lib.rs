//! March memory-test engine.
//!
//! March algorithms are the industry-standard RAM tests the PRT paper
//! positions itself against ("March algorithms are commonly and widely used
//! to test the units of random access memory"). This crate implements the
//! full toolchain:
//!
//! * [`MarchTest`] / [`MarchElement`] / [`Op`] — the formal notation of van
//!   de Goor's reference \[1\], e.g.
//!   `MarchA = {c(w0); ⇑(r0,w1); ⇓(r1,w0)}` (the paper's §1 example —
//!   which is actually MATS+; the library provides both),
//! * [`parse`] — a parser for that notation (Unicode `⇑⇓c` or ASCII
//!   `u d c/any` forms) with round-tripping `Display`,
//! * [`library`] — twelve classic algorithms from MATS to March SS,
//! * [`Executor`] — runs a test against any [`prt_ram::MemoryDevice`],
//!   counting operations and recording the first mismatch,
//! * [`coverage`] — measures fault coverage over a
//!   [`prt_ram::FaultUniverse`]; experiment E10 uses this to *validate the
//!   simulator* by reproducing the textbook coverage table of the classic
//!   March tests.
//!
//! # Example
//!
//! ```
//! use prt_march::{library, Executor};
//! use prt_ram::{FaultKind, Geometry, Ram};
//!
//! let mut ram = Ram::new(Geometry::bom(16));
//! ram.inject(FaultKind::StuckAt { cell: 5, bit: 0, value: 0 })?;
//! let outcome = Executor::new().run(&library::mats_plus(), &mut ram);
//! assert!(outcome.detected());
//! # Ok::<(), prt_ram::RamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
mod error;
pub mod executor;
pub mod library;
pub mod notation;
pub mod parser;

pub use coverage::{CoverageReport, CoverageRow};
pub use error::MarchError;
pub use executor::{Executor, Mismatch, Outcome};
pub use notation::{AddrOrder, Logic, MarchElement, MarchTest, Op};
pub use parser::parse;
