//! The formal March notation.
//!
//! A March test is a sequence of *March elements*; each element traverses
//! the whole address space in a fixed order applying the same short
//! sequence of read/write operations to every cell. The notation follows
//! van de Goor: `{c(w0); ⇑(r0,w1); ⇓(r1,w0)}` where `⇑`/`⇓`/`c` denote
//! ascending / descending / don't-care address order and `r d`/`w d` read
//! (expecting) or write the logical value `d ∈ {0, 1}`.
//!
//! For word-oriented memories the logical values are expanded through a
//! *data background* `B`: logical 0 writes `B`, logical 1 writes `¬B`
//! (default background all-zeros reproduces the bit-oriented behaviour).

/// A logical March data value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Logic {
    /// Logical 0 — the data background itself.
    Zero,
    /// Logical 1 — the complemented background.
    One,
}

impl Logic {
    /// Expands the logical value through a data background.
    pub fn expand(self, background: u64, mask: u64) -> u64 {
        match self {
            Logic::Zero => background & mask,
            Logic::One => !background & mask,
        }
    }

    /// The complementary value.
    pub fn complement(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
        }
    }
}

/// One read or write operation within a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read and compare against the expected logical value.
    Read(Logic),
    /// Write the logical value.
    Write(Logic),
}

impl Op {
    /// `r0` shorthand.
    pub const R0: Op = Op::Read(Logic::Zero);
    /// `r1` shorthand.
    pub const R1: Op = Op::Read(Logic::One);
    /// `w0` shorthand.
    pub const W0: Op = Op::Write(Logic::Zero);
    /// `w1` shorthand.
    pub const W1: Op = Op::Write(Logic::One);
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Read(Logic::Zero) => write!(f, "r0"),
            Op::Read(Logic::One) => write!(f, "r1"),
            Op::Write(Logic::Zero) => write!(f, "w0"),
            Op::Write(Logic::One) => write!(f, "w1"),
        }
    }
}

/// Address traversal order of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrOrder {
    /// `⇑` — ascending addresses `0 → n−1`.
    Up,
    /// `⇓` — descending addresses `n−1 → 0`.
    Down,
    /// `c` — don't care (executed ascending by convention).
    Any,
}

impl std::fmt::Display for AddrOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddrOrder::Up => write!(f, "⇑"),
            AddrOrder::Down => write!(f, "⇓"),
            AddrOrder::Any => write!(f, "c"),
        }
    }
}

/// One March element: an address order plus an operation sequence applied
/// to every cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchElement {
    /// Traversal order.
    pub order: AddrOrder,
    /// Operations applied at every address.
    pub ops: Vec<Op>,
}

impl MarchElement {
    /// Creates an element.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(order: AddrOrder, ops: Vec<Op>) -> MarchElement {
        assert!(!ops.is_empty(), "march element needs at least one operation");
        MarchElement { order, ops }
    }
}

impl std::fmt::Display for MarchElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.order)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

/// A complete March test.
///
/// # Example
///
/// ```
/// use prt_march::{AddrOrder, MarchElement, MarchTest, Op};
///
/// let mats_plus = MarchTest::new(
///     "MATS+",
///     vec![
///         MarchElement::new(AddrOrder::Any, vec![Op::W0]),
///         MarchElement::new(AddrOrder::Up, vec![Op::R0, Op::W1]),
///         MarchElement::new(AddrOrder::Down, vec![Op::R1, Op::W0]),
///     ],
/// );
/// assert_eq!(mats_plus.ops_per_cell(), 5); // the classic "5n" complexity
/// assert_eq!(mats_plus.to_string(), "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

impl MarchTest {
    /// Creates a named test from its elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn new(name: impl Into<String>, elements: Vec<MarchElement>) -> MarchTest {
        assert!(!elements.is_empty(), "march test needs at least one element");
        MarchTest { name: name.into(), elements }
    }

    /// The test's name (e.g. `"March C-"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The elements in execution order.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Operations applied per memory cell — the `k` in the classic `kn`
    /// complexity figure.
    pub fn ops_per_cell(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }

    /// Total operations on an `n`-cell memory.
    pub fn total_ops(&self, n: usize) -> u64 {
        self.ops_per_cell() as u64 * n as u64
    }
}

impl std::fmt::Display for MarchTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_expansion_with_background() {
        assert_eq!(Logic::Zero.expand(0b0000, 0xF), 0b0000);
        assert_eq!(Logic::One.expand(0b0000, 0xF), 0b1111);
        // checkerboard background
        assert_eq!(Logic::Zero.expand(0b0101, 0xF), 0b0101);
        assert_eq!(Logic::One.expand(0b0101, 0xF), 0b1010);
    }

    #[test]
    fn complement_is_involution() {
        assert_eq!(Logic::Zero.complement().complement(), Logic::Zero);
        assert_eq!(Logic::One.complement(), Logic::Zero);
    }

    #[test]
    fn ops_display() {
        assert_eq!(Op::R0.to_string(), "r0");
        assert_eq!(Op::W1.to_string(), "w1");
    }

    #[test]
    fn element_display() {
        let e = MarchElement::new(AddrOrder::Up, vec![Op::R0, Op::W1]);
        assert_eq!(e.to_string(), "⇑(r0,w1)");
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_element_panics() {
        let _ = MarchElement::new(AddrOrder::Up, vec![]);
    }

    #[test]
    fn test_complexity() {
        let t = MarchTest::new(
            "toy",
            vec![
                MarchElement::new(AddrOrder::Any, vec![Op::W0]),
                MarchElement::new(AddrOrder::Up, vec![Op::R0, Op::W1, Op::R1]),
            ],
        );
        assert_eq!(t.ops_per_cell(), 4);
        assert_eq!(t.total_ops(10), 40);
        assert_eq!(t.name(), "toy");
    }
}
