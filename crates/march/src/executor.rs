//! March test execution against a simulated memory.
//!
//! Two execution paths share the same semantics:
//!
//! * [`Executor::run`] interprets the notation directly against any
//!   [`MemoryDevice`] — the reference path, and the oracle the compiled
//!   path is property-tested against.
//! * [`Executor::compile`] lowers a [`MarchTest`] to a flat
//!   [`prt_ram::TestProgram`] (one `Write`/`ReadExpect` per executed
//!   operation, background pre-expanded, one marker per March element),
//!   which [`Executor::run_compiled`] — or any `prt-sim` campaign —
//!   executes without re-reading the notation. Fault-simulation campaigns
//!   compile once per (test, geometry, background) and reuse the program
//!   across every trial.

use crate::notation::{AddrOrder, MarchTest, Op};
use prt_ram::{Geometry, MemoryDevice, ProgramBuilder, Ram, TestProgram};

/// The first observed read mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// Index of the March element in which the mismatch occurred.
    pub element: usize,
    /// The address read.
    pub addr: usize,
    /// The expected word.
    pub expected: u64,
    /// The word actually returned.
    pub got: u64,
}

/// Result of running a March test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    mismatch: Option<Mismatch>,
    ops: u64,
}

impl Outcome {
    /// `true` if the test flagged the memory as faulty.
    pub fn detected(&self) -> bool {
        self.mismatch.is_some()
    }

    /// The first mismatch, if any.
    pub fn mismatch(&self) -> Option<Mismatch> {
        self.mismatch
    }

    /// Operations executed (the complete `k·n` when the test passed, or
    /// when [`Executor::run_to_completion`] was used; fewer if the executor
    /// stopped at the first mismatch).
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Configurable March test executor.
///
/// # Example
///
/// ```
/// use prt_march::{library, Executor};
/// use prt_ram::{Geometry, Ram};
///
/// let mut good = Ram::new(Geometry::bom(32));
/// let outcome = Executor::new().run(&library::march_c_minus(), &mut good);
/// assert!(!outcome.detected());
/// assert_eq!(outcome.ops(), 10 * 32); // March C- really is 10n
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    background: u64,
    stop_at_first: bool,
}

impl Executor {
    /// An executor with all-zero background that runs tests to completion.
    pub fn new() -> Executor {
        Executor { background: 0, stop_at_first: false }
    }

    /// Sets the data background for word-oriented memories: logical 0
    /// becomes `background`, logical 1 its complement.
    pub fn with_background(mut self, background: u64) -> Executor {
        self.background = background;
        self
    }

    /// Stop at the first mismatch (faster for coverage sweeps; the reported
    /// op count is then the ops executed until detection).
    pub fn stop_at_first_mismatch(mut self) -> Executor {
        self.stop_at_first = true;
        self
    }

    /// Runs `test` on `mem` and reports the outcome.
    pub fn run<M: MemoryDevice>(&self, test: &MarchTest, mem: &mut M) -> Outcome {
        let geom = mem.geometry();
        let n = geom.cells();
        let mask = geom.data_mask();
        let bg = self.background & mask;
        let mut ops: u64 = 0;
        let mut first: Option<Mismatch> = None;

        'elements: for (ei, element) in test.elements().iter().enumerate() {
            let addrs: Box<dyn Iterator<Item = usize>> = match element.order {
                AddrOrder::Up | AddrOrder::Any => Box::new(0..n),
                AddrOrder::Down => Box::new((0..n).rev()),
            };
            for addr in addrs {
                for op in &element.ops {
                    ops += 1;
                    match *op {
                        Op::Write(d) => mem.write(addr, d.expand(bg, mask)),
                        Op::Read(d) => {
                            let expected = d.expand(bg, mask);
                            let got = mem.read(addr);
                            if got != expected && first.is_none() {
                                first = Some(Mismatch { element: ei, addr, expected, got });
                                if self.stop_at_first {
                                    break 'elements;
                                }
                            }
                        }
                    }
                }
            }
        }
        Outcome { mismatch: first, ops }
    }

    /// Runs to completion regardless of the `stop_at_first` setting.
    pub fn run_to_completion<M: MemoryDevice>(&self, test: &MarchTest, mem: &mut M) -> Outcome {
        Executor { background: self.background, stop_at_first: false }.run(test, mem)
    }

    /// Compiles `test` for `geom` into a flat [`TestProgram`]: the address
    /// orders are materialised, every logical value is expanded through
    /// this executor's background, and each March element contributes a
    /// marker (so a mismatching op index maps back to its element).
    ///
    /// The program executes the exact operation sequence of
    /// [`Executor::run`] and is verdict- and op-count-identical to it
    /// (property-tested); campaigns reuse it across all trials.
    pub fn compile(&self, test: &MarchTest, geom: Geometry) -> TestProgram {
        self.compile_gated(test, geom, None)
    }

    /// Compiles `test` with the **check window** restricted to `window`
    /// (see [`prt_ram::ProgramBuilder::with_window`]): every write and
    /// every read is still issued over the full address range — the
    /// operation stream is identical to [`Executor::compile`]'s — but
    /// reads of out-of-window addresses carry no comparison. This models
    /// address-range gating of the BIST comparator, and is the probe
    /// primitive of diagnostic bisection: a fault observable on the full
    /// range stays observable on at least one half, because only the
    /// *observation* is windowed, never the fault-activating accesses.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or one exceeding the geometry.
    pub fn compile_window(
        &self,
        test: &MarchTest,
        geom: Geometry,
        window: std::ops::Range<usize>,
    ) -> TestProgram {
        self.compile_gated(test, geom, Some(window))
    }

    fn compile_gated(
        &self,
        test: &MarchTest,
        geom: Geometry,
        window: Option<std::ops::Range<usize>>,
    ) -> TestProgram {
        let n = geom.cells();
        let mask = geom.data_mask();
        let bg = self.background & mask;
        let mut b =
            ProgramBuilder::new(geom).with_name(test.name()).with_background(self.background);
        if let Some(w) = window {
            b = b.with_name(format!("{} [{}..{})", test.name(), w.start, w.end)).with_window(w);
        }
        for (ei, element) in test.elements().iter().enumerate() {
            b.mark(ei as u32);
            let addrs: Box<dyn Iterator<Item = usize>> = match element.order {
                AddrOrder::Up | AddrOrder::Any => Box::new(0..n),
                AddrOrder::Down => Box::new((0..n).rev()),
            };
            for addr in addrs {
                for op in &element.ops {
                    match *op {
                        Op::Write(d) => b.write(addr, d.expand(bg, mask)),
                        Op::Read(d) => b.read_checked(addr, d.expand(bg, mask)),
                    }
                }
            }
        }
        b.build()
    }

    /// Runs a program produced by [`Executor::compile`] and reports the
    /// outcome in the same shape as [`Executor::run`] (this executor's
    /// `stop_at_first` setting applies; its background does not — the
    /// program's own baked-in background is what executes).
    ///
    /// # Panics
    ///
    /// Panics if `ram`'s geometry differs from the one the program was
    /// compiled for (the only way a single-port compiled program can
    /// fail — every operand was validated at compile time).
    pub fn run_compiled(&self, program: &TestProgram, ram: &mut Ram) -> Outcome {
        let exec = program
            .execute(ram, self.stop_at_first, None)
            .unwrap_or_else(|e| panic!("compiled March program cannot run on this device: {e}"));
        let mismatch = exec.first_mismatch.map(|m| Mismatch {
            element: program.mark_before(m.op_index).unwrap_or(0) as usize,
            addr: m.addr,
            expected: m.expected,
            got: m.got,
        });
        Outcome { mismatch, ops: exec.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use prt_ram::{FaultKind, Geometry, Ram};

    #[test]
    fn fault_free_memory_passes_every_library_test() {
        for t in library::all() {
            let mut ram = Ram::new(Geometry::bom(16));
            let o = Executor::new().run(&t, &mut ram);
            assert!(!o.detected(), "{} false positive", t.name());
            assert_eq!(o.ops(), t.total_ops(16), "{} op count", t.name());
        }
    }

    #[test]
    fn fault_free_wom_passes_with_any_background() {
        for bg in [0x0u64, 0xF, 0x5, 0xA] {
            let mut ram = Ram::new(Geometry::wom(8, 4).unwrap());
            let o = Executor::new().with_background(bg).run(&library::march_c_minus(), &mut ram);
            assert!(!o.detected(), "bg={bg:x}");
        }
    }

    #[test]
    fn saf_detected_by_mats_plus() {
        for value in [0u8, 1] {
            for cell in 0..8 {
                let mut ram = Ram::new(Geometry::bom(8));
                ram.inject(FaultKind::StuckAt { cell, bit: 0, value }).unwrap();
                let o = Executor::new().run(&library::mats_plus(), &mut ram);
                assert!(o.detected(), "SA{value}@{cell} escaped MATS+");
            }
        }
    }

    #[test]
    fn tf_escapes_mats_plus_but_not_mats_plus_plus() {
        // The up-transition fault is caught (w1 then r1 later), but the
        // down-transition fault needs the trailing r0 of MATS++.
        let mut escaped_any = false;
        for rising in [true, false] {
            for cell in 0..8 {
                let mut ram = Ram::new(Geometry::bom(8));
                ram.inject(FaultKind::Transition { cell, bit: 0, rising }).unwrap();
                let mats_plus = Executor::new().run(&library::mats_plus(), &mut ram);
                if !mats_plus.detected() {
                    escaped_any = true;
                }
                let mut ram2 = Ram::new(Geometry::bom(8));
                ram2.inject(FaultKind::Transition { cell, bit: 0, rising }).unwrap();
                let mats_pp = Executor::new().run(&library::mats_plus_plus(), &mut ram2);
                assert!(mats_pp.detected(), "TF(rising={rising})@{cell} escaped MATS++");
            }
        }
        assert!(escaped_any, "some TF must escape MATS+ (it has no TF guarantee)");
    }

    #[test]
    fn mismatch_reports_location() {
        let mut ram = Ram::new(Geometry::bom(8));
        ram.inject(FaultKind::StuckAt { cell: 5, bit: 0, value: 0 }).unwrap();
        let o = Executor::new().run(&library::mats_plus(), &mut ram);
        let m = o.mismatch().expect("detected");
        assert_eq!(m.addr, 5);
        assert_eq!(m.expected, 1);
        assert_eq!(m.got, 0);
    }

    #[test]
    fn stop_at_first_executes_fewer_ops() {
        let mut ram = Ram::new(Geometry::bom(64));
        ram.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }).unwrap();
        let full = Executor::new().run(&library::march_c_minus(), &mut {
            let mut r = Ram::new(Geometry::bom(64));
            r.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }).unwrap();
            r
        });
        let early =
            Executor::new().stop_at_first_mismatch().run(&library::march_c_minus(), &mut ram);
        assert!(early.detected() && full.detected());
        assert!(early.ops() < full.ops());
    }

    #[test]
    fn descending_element_really_descends() {
        // A CFin with aggressor above the victim is only caught by a
        // descending traversal in MATS-like tests; use a probe memory that
        // records access order instead: simpler — check op counts via
        // stats with a fault whose detection depends on order.
        // Direct check: run {⇓(w0)} and confirm cell n−1 written first via
        // a transition fault at cell 0 triggered by... Simplest reliable
        // check: MATS+ detects AF shadow pairs in both orders.
        let t = crate::parse("desc", "{⇓(w0); ⇑(r0,w1); ⇓(r1,w0)}").unwrap();
        let mut ram = Ram::new(Geometry::bom(4));
        let o = Executor::new().run(&t, &mut ram);
        assert!(!o.detected());
        assert_eq!(o.ops(), 5 * 4);
    }

    #[test]
    fn compiled_program_matches_interpreted_run() {
        // Every library test, a fault in every cell: identical verdict,
        // mismatch location and op count on both paths.
        let geom = Geometry::bom(8);
        for ex in [Executor::new(), Executor::new().stop_at_first_mismatch()] {
            for t in library::all() {
                let prog = ex.compile(&t, geom);
                assert_eq!(prog.ops().len(), t.total_ops(8) as usize);
                for cell in 0..8 {
                    let mut a = Ram::new(geom);
                    a.inject(FaultKind::StuckAt { cell, bit: 0, value: 1 }).unwrap();
                    let mut b = Ram::new(geom);
                    b.inject(FaultKind::StuckAt { cell, bit: 0, value: 1 }).unwrap();
                    let interpreted = ex.run(&t, &mut a);
                    let compiled = ex.run_compiled(&prog, &mut b);
                    assert_eq!(interpreted, compiled, "{} SA1@{cell}", t.name());
                }
            }
        }
    }

    #[test]
    fn compiled_background_expansion_matches() {
        let geom = Geometry::wom(8, 4).unwrap();
        let ex = Executor::new().with_background(0b0101);
        let t = library::march_c_minus();
        let prog = ex.compile(&t, geom);
        let mut a = Ram::new(geom);
        a.inject(FaultKind::StuckAt { cell: 3, bit: 2, value: 1 }).unwrap();
        let mut b = Ram::new(geom);
        b.inject(FaultKind::StuckAt { cell: 3, bit: 2, value: 1 }).unwrap();
        assert_eq!(ex.run(&t, &mut a), ex.run_compiled(&prog, &mut b));
    }

    #[test]
    fn compiled_mismatch_recovers_element_index() {
        let geom = Geometry::bom(8);
        let ex = Executor::new();
        let t = library::mats_plus();
        let prog = ex.compile(&t, geom);
        let mut ram = Ram::new(geom);
        ram.inject(FaultKind::StuckAt { cell: 5, bit: 0, value: 0 }).unwrap();
        let o = ex.run_compiled(&prog, &mut ram);
        let m = o.mismatch().expect("detected");
        assert_eq!((m.element, m.addr, m.expected, m.got), (2, 5, 1, 0));
    }

    #[test]
    fn windowed_compile_gates_checks_only() {
        let geom = Geometry::bom(16);
        let ex = Executor::new();
        let t = library::march_c_minus();
        let full = ex.compile(&t, geom);
        let lo = ex.compile_window(&t, geom, 0..8);
        let hi = ex.compile_window(&t, geom, 8..16);
        assert_eq!(lo.window(), Some(0..8));
        // Window-invariant op stream: same op count everywhere.
        for prog in [&full, &lo, &hi] {
            let mut ram = Ram::new(geom);
            let exec = prog.execute(&mut ram, false, None).unwrap();
            assert!(!exec.detected(), "{}", prog.name());
            assert_eq!(exec.ops, t.total_ops(16), "{}", prog.name());
        }
        // A fault is observable exactly in the window holding its victim —
        // the soundness invariant diagnostic bisection rests on.
        for cell in 0..16 {
            let probe = |prog: &prt_ram::TestProgram| {
                let mut ram = Ram::new(geom);
                ram.inject(FaultKind::StuckAt { cell, bit: 0, value: 1 }).unwrap();
                prog.detect(&mut ram)
            };
            assert!(probe(&full), "cell {cell}");
            assert_eq!(probe(&lo), cell < 8, "cell {cell}");
            assert_eq!(probe(&hi), cell >= 8, "cell {cell}");
        }
    }

    #[test]
    fn wom_background_expansion() {
        // With background 0b0101 on 4-bit cells, w0 writes 0b0101.
        let t = crate::parse("probe", "{c(w0)}").unwrap();
        let mut ram = Ram::new(Geometry::wom(4, 4).unwrap());
        Executor::new().with_background(0b0101).run(&t, &mut ram);
        for c in 0..4 {
            assert_eq!(ram.peek(c), 0b0101);
        }
    }
}
