//! The classic March test library.
//!
//! Fifteen algorithms spanning the complexity/coverage trade-off from
//! MATS (4n) to March RAW (26n), plus the diagnosis-oriented
//! [`march_diag`]. Complexities and element sequences follow van de Goor,
//! *Testing Semiconductor Memories* (the paper's reference \[1\]),
//! van de Goor's March U, and Hamdioui et al. for March SS and March RAW.
//! The *measured* coverage of each test on this workspace's fault
//! simulator is reported by experiment E10 — that table is the validation
//! that simulator and literature agree.

use crate::notation::MarchTest;
use crate::parser::parse;

fn must(name: &str, notation: &str) -> MarchTest {
    parse(name, notation).expect("library notation is well-formed")
}

/// MATS, 4n: the minimal test for stuck-at faults on wired-OR memories.
pub fn mats() -> MarchTest {
    must("MATS", "{c(w0); c(r0,w1); c(r1)}")
}

/// MATS+, 5n: SAF + AF. This is the algorithm the paper's §1 quotes (named
/// "MarchA" there).
pub fn mats_plus() -> MarchTest {
    must("MATS+", "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}")
}

/// MATS++, 6n: SAF + AF + TF.
pub fn mats_plus_plus() -> MarchTest {
    must("MATS++", "{c(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}")
}

/// March X, 6n: SAF + AF + TF + CFin.
pub fn march_x() -> MarchTest {
    must("March X", "{c(w0); ⇑(r0,w1); ⇓(r1,w0); c(r0)}")
}

/// March Y, 8n: March X plus linked transition-fault coverage.
pub fn march_y() -> MarchTest {
    must("March Y", "{c(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); c(r0)}")
}

/// March C, 11n: the original Marinescu algorithm (contains a redundant
/// middle `c(r0)`).
pub fn march_c() -> MarchTest {
    must("March C", "{c(w0); ⇑(r0,w1); ⇑(r1,w0); c(r0); ⇓(r0,w1); ⇓(r1,w0); c(r0)}")
}

/// March C-, 10n: the redundancy-free March C; detects all unlinked SAF,
/// TF, CFin, CFid, CFst and AF.
pub fn march_c_minus() -> MarchTest {
    must("March C-", "{c(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); c(r0)}")
}

/// March A, 15n: linked coupling-fault coverage.
pub fn march_a() -> MarchTest {
    must("March A", "{c(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}")
}

/// March B, 17n: March A plus linked TF coverage.
pub fn march_b() -> MarchTest {
    must("March B", "{c(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}")
}

/// March LR, 14n: realistic linked-fault coverage (van de Goor & Gaydadjiev).
pub fn march_lr() -> MarchTest {
    must("March LR", "{c(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); c(r0)}")
}

/// PMOVI, 13n: the MOVI core without the address-shift repetitions.
pub fn pmovi() -> MarchTest {
    must("PMOVI", "{⇓(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0)}")
}

/// March U, 13n: van de Goor's unlinked-fault test — SAF, AF, TF, CFin
/// and CFid coverage at 2n fewer operations than March B.
pub fn march_u() -> MarchTest {
    must("March U", "{c(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)}")
}

/// March RAW, 26n: the read-after-write test of Hamdioui, van de Goor &
/// Rodgers — every state/polarity combination is read immediately after
/// the write that establishes it (`rX,wX,rX` triplets), targeting the
/// dynamic read-after-write fault families on top of the full static
/// coverage.
pub fn march_raw() -> MarchTest {
    must(
        "March RAW",
        "{c(w0); ⇑(r0,w0,r0,r0,w1,r1); ⇑(r1,w1,r1,r1,w0,r0); ⇓(r0,w0,r0,r0,w1,r1); ⇓(r1,w1,r1,r1,w0,r0); c(r0)}",
    )
}

/// March SS, 22n: detects all *simple static* faults including read/write
/// disturb families (Hamdioui, Al-Ars & van de Goor, VTS 2002).
pub fn march_ss() -> MarchTest {
    must(
        "March SS",
        "{c(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); c(r0)}",
    )
}

/// March C-D, 14n: the **diagnostic** March C- variant — every
/// transition write is followed by an immediate read-back. Detection
/// coverage equals March C-'s; what the extra reads buy is *syndrome
/// resolution*: the observed response stream separates fault instances
/// that March C- lumps together (a transition fault fails its
/// read-after-write in the element that wrote it, a state coupling fails
/// at the victim while the aggressor holds the trigger state, …), which
/// is what fault-dictionary diagnosis compacts into per-fault MISR
/// signatures (`prt-diag`).
pub fn march_diag() -> MarchTest {
    must("March C-D", "{c(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0); c(r0)}")
}

/// All library tests, shortest first.
pub fn all() -> Vec<MarchTest> {
    vec![
        mats(),
        mats_plus(),
        mats_plus_plus(),
        march_x(),
        march_y(),
        march_c_minus(),
        march_c(),
        pmovi(),
        march_u(),
        march_diag(),
        march_lr(),
        march_a(),
        march_b(),
        march_ss(),
        march_raw(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_complexities() {
        let expected = [
            ("MATS", 4),
            ("MATS+", 5),
            ("MATS++", 6),
            ("March X", 6),
            ("March Y", 8),
            ("March C-", 10),
            ("March C", 11),
            ("PMOVI", 13),
            ("March U", 13),
            ("March C-D", 14),
            ("March LR", 14),
            ("March A", 15),
            ("March B", 17),
            ("March SS", 22),
            ("March RAW", 26),
        ];
        let tests = all();
        assert_eq!(tests.len(), expected.len());
        for (t, (name, k)) in tests.iter().zip(expected) {
            assert_eq!(t.name(), name);
            assert_eq!(t.ops_per_cell(), k, "{name}");
        }
    }

    #[test]
    fn paper_example_is_mats_plus() {
        // §1 of the paper: "MarchA = {c(w0); ⇑(r0w1); ⇓(r1w0)}" — the
        // element structure quoted there is the one known as MATS+.
        assert_eq!(mats_plus().to_string(), "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}");
    }

    #[test]
    fn all_tests_have_unique_names() {
        let tests = all();
        let mut names: Vec<&str> = tests.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tests.len());
    }

    #[test]
    fn every_test_initialises_before_reading() {
        // First element of every library test must be write-only (otherwise
        // results depend on power-up state).
        for t in all() {
            let first = &t.elements()[0];
            assert!(
                first.ops.iter().all(|op| matches!(op, crate::Op::Write(_))),
                "{} reads before initialising",
                t.name()
            );
        }
    }
}
