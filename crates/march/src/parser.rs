//! Parser for the formal March notation.
//!
//! Accepts the Unicode form used in the literature and an ASCII equivalent:
//!
//! ```text
//! {c(w0); ⇑(r0,w1); ⇓(r1,w0)}          # van de Goor / paper notation
//! {any(w0); up(r0,w1); down(r1,w0)}    # ASCII keywords
//! {~(w0); ^(r0,w1); v(r1,w0)}          # ASCII symbols
//! ```
//!
//! [`parse`] round-trips with [`MarchTest`]'s `Display` implementation.

use crate::notation::{AddrOrder, Logic, MarchElement, MarchTest, Op};
use crate::MarchError;

/// Parses March notation into a [`MarchTest`].
///
/// # Errors
///
/// Returns a [`MarchError`] describing the first syntactic problem.
///
/// # Example
///
/// ```
/// let t = prt_march::parse("MATS+", "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}")?;
/// assert_eq!(t.ops_per_cell(), 5);
/// assert_eq!(t.to_string(), "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}");
/// # Ok::<(), prt_march::MarchError>(())
/// ```
pub fn parse(name: &str, notation: &str) -> Result<MarchTest, MarchError> {
    let s = notation.trim();
    if s.is_empty() {
        return Err(MarchError::Empty);
    }
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or(MarchError::UnbalancedBraces)?;
    let mut elements = Vec::new();
    for raw in inner.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        elements.push(parse_element(raw)?);
    }
    if elements.is_empty() {
        return Err(MarchError::Empty);
    }
    Ok(MarchTest::new(name, elements))
}

fn parse_element(text: &str) -> Result<MarchElement, MarchError> {
    let open =
        text.find('(').ok_or_else(|| MarchError::MalformedElement { text: text.to_string() })?;
    if !text.ends_with(')') {
        return Err(MarchError::MalformedElement { text: text.to_string() });
    }
    let order_sym = text[..open].trim();
    let order = parse_order(order_sym)?;
    let ops_text = &text[open + 1..text.len() - 1];
    let mut ops = Vec::new();
    for tok in ops_text.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        ops.push(parse_op(tok)?);
    }
    if ops.is_empty() {
        return Err(MarchError::EmptyElement);
    }
    Ok(MarchElement::new(order, ops))
}

fn parse_order(sym: &str) -> Result<AddrOrder, MarchError> {
    match sym {
        "⇑" | "↑" | "^" | "up" | "u" => Ok(AddrOrder::Up),
        "⇓" | "↓" | "v" | "down" | "d" => Ok(AddrOrder::Down),
        "c" | "~" | "any" | "" => Ok(AddrOrder::Any),
        other => Err(MarchError::UnknownOrder { symbol: other.to_string() }),
    }
}

fn parse_op(tok: &str) -> Result<Op, MarchError> {
    match tok.to_ascii_lowercase().as_str() {
        "r0" => Ok(Op::Read(Logic::Zero)),
        "r1" => Ok(Op::Read(Logic::One)),
        "w0" => Ok(Op::Write(Logic::Zero)),
        "w1" => Ok(Op::Write(Logic::One)),
        other => Err(MarchError::UnknownOp { token: other.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unicode_notation() {
        let t = parse("MATS+", "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}").unwrap();
        assert_eq!(t.elements().len(), 3);
        assert_eq!(t.elements()[1].order, AddrOrder::Up);
        assert_eq!(t.elements()[1].ops, vec![Op::R0, Op::W1]);
        assert_eq!(t.ops_per_cell(), 5);
    }

    #[test]
    fn parses_ascii_keyword_notation() {
        let t = parse("x", "{any(w0); up(r0,w1); down(r1,w0)}").unwrap();
        assert_eq!(t.to_string(), "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}");
    }

    #[test]
    fn parses_ascii_symbol_notation() {
        let t = parse("x", "{~(w0); ^(r0,w1); v(r1,w0)}").unwrap();
        assert_eq!(t.to_string(), "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}");
    }

    #[test]
    fn roundtrip_through_display() {
        let texts = [
            "{c(w0); ⇑(r0,w1); ⇓(r1,w0)}",
            "{c(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}",
        ];
        for text in texts {
            let t = parse("t", text).unwrap();
            assert_eq!(t.to_string(), text);
            let t2 = parse("t", &t.to_string()).unwrap();
            assert_eq!(t, t2);
        }
    }

    #[test]
    fn library_tests_roundtrip() {
        for t in crate::library::all() {
            let reparsed = parse(t.name(), &t.to_string()).unwrap();
            assert_eq!(&reparsed, &t, "{}", t.name());
        }
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse("e", ""), Err(MarchError::Empty)));
        assert!(matches!(parse("e", "c(w0)"), Err(MarchError::UnbalancedBraces)));
        assert!(matches!(parse("e", "{c w0}"), Err(MarchError::MalformedElement { .. })));
        assert!(matches!(parse("e", "{q(w0)}"), Err(MarchError::UnknownOrder { .. })));
        assert!(matches!(parse("e", "{c(w2)}"), Err(MarchError::UnknownOp { .. })));
        assert!(matches!(parse("e", "{c()}"), Err(MarchError::EmptyElement)));
        assert!(matches!(parse("e", "{}"), Err(MarchError::Empty)));
    }

    #[test]
    fn whitespace_tolerant() {
        let t = parse("x", "{ c ( w0 ) ;  ⇑ ( r0 , w1 ) }").unwrap();
        assert_eq!(t.ops_per_cell(), 3);
    }
}
