//! Fault-coverage evaluation of March tests.
//!
//! Runs a test against every instance of a [`FaultUniverse`] and aggregates
//! detection per fault class. Experiment E10 uses this to reproduce the
//! textbook coverage table (MATS+ → SAF+AF, March C- → +TF+CF…), which
//! validates the fault simulator that the PRT experiments then build on.
//!
//! Evaluation is delegated to the [`prt_sim`] campaign engine: pooled
//! memories, parallel fan-out over fault instances and deterministic
//! aggregation (the report is identical to a sequential sweep for any
//! thread count). [`CoverageRow`], [`CoverageReport`] and [`ClassTally`]
//! live in `prt-sim` now and are re-exported here unchanged.

use crate::executor::Executor;
use crate::notation::MarchTest;
use prt_ram::{FaultUniverse, Ram};
use prt_sim::{Campaign, FaultRunner, ProgramBank};

pub use prt_sim::{ClassTally, CoverageReport, CoverageRow};

/// Campaign adapter that re-interprets the March notation on every trial —
/// kept as the pre-compilation reference the compiled path is
/// property-tested and benchmarked against. The evaluators below compile
/// the test once per (geometry, background) instead ([`compile_bank`]).
#[derive(Debug, Clone, Copy)]
pub struct MarchRunner<'a> {
    test: &'a MarchTest,
    executor: &'a Executor,
}

impl<'a> MarchRunner<'a> {
    /// Pairs a test with executor settings.
    pub fn new(test: &'a MarchTest, executor: &'a Executor) -> MarchRunner<'a> {
        MarchRunner { test, executor }
    }
}

impl FaultRunner for MarchRunner<'_> {
    fn detect(&self, ram: &mut Ram, background: u64) -> bool {
        self.executor.clone().with_background(background).run(self.test, ram).detected()
    }
}

/// Measures the coverage of `test` over `universe`.
///
/// # Example
///
/// ```
/// use prt_march::{coverage, library, Executor};
/// use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
///
/// let u = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
/// let report = coverage::evaluate(&library::march_c_minus(), &u, &Executor::new());
/// assert!(report.complete()); // March C- detects all SAF and TF
/// ```
pub fn evaluate(test: &MarchTest, universe: &FaultUniverse, executor: &Executor) -> CoverageReport {
    evaluate_multi_background(test, universe, executor, &[0])
}

/// Measures coverage of `test` executed once per *data background*: the
/// standard word-oriented extension of a March algorithm. A fault counts
/// as detected when any background run flags it.
///
/// The classic result (reproduced by experiment E4): a bit-oriented March
/// test needs `⌈log₂ m⌉ + 1` backgrounds (e.g. `0000, 0101, 0011` for
/// `m = 4`) to expose intra-word coupling faults that a single background
/// can never sensitise.
///
/// # Example
///
/// ```
/// use prt_march::{coverage, library, Executor};
/// use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
///
/// let spec = UniverseSpec { cfst: true, intra_word: true,
///     coupling_radius: Some(0), ..UniverseSpec::default() };
/// let u = FaultUniverse::enumerate(Geometry::wom(8, 4)?, &spec);
/// let ex = Executor::new().stop_at_first_mismatch();
/// let one = coverage::evaluate(&library::march_c_minus(), &u, &ex);
/// let multi = coverage::evaluate_multi_background(
///     &library::march_c_minus(), &u, &ex, &[0b0000, 0b0101, 0b0011]);
/// assert!(multi.overall_percent() > one.overall_percent());
/// # Ok::<(), prt_ram::RamError>(())
/// ```
pub fn evaluate_multi_background(
    test: &MarchTest,
    universe: &FaultUniverse,
    executor: &Executor,
    backgrounds: &[u64],
) -> CoverageReport {
    assert!(!backgrounds.is_empty(), "at least one data background required");
    let bank = compile_bank(test, universe.geometry(), executor, backgrounds);
    Campaign::new(universe, &bank).with_backgrounds(backgrounds).with_name(test.name()).run()
}

/// Compiles `test` once per background into a [`ProgramBank`] ready for
/// [`Campaign::with_backgrounds`] — the compile-once-run-many path the
/// evaluators use. The compiled trials stop at the first mismatch (the
/// verdict is identical either way; see [`Executor::compile`]).
pub fn compile_bank(
    test: &MarchTest,
    geom: prt_ram::Geometry,
    executor: &Executor,
    backgrounds: &[u64],
) -> ProgramBank {
    ProgramBank::new(
        backgrounds
            .iter()
            .map(|&bg| (bg, executor.clone().with_background(bg).compile(test, geom))),
    )
}

/// The standard background set for `m`-bit words: all-zeros plus the
/// `⌈log₂ m⌉` "binary counting" patterns — every bit pair is separated by
/// at least one background.
///
/// ```
/// assert_eq!(prt_march::coverage::standard_backgrounds(4), vec![0b0000, 0b1010, 0b1100]);
/// ```
pub fn standard_backgrounds(m: u32) -> Vec<u64> {
    let mut out = vec![0u64];
    let mut stride = 1u32;
    while stride < m {
        // Pattern with `stride` zeros then `stride` ones, repeated.
        let mut p = 0u64;
        for bit in 0..m {
            if (bit / stride) % 2 == 1 {
                p |= 1 << bit;
            }
        }
        out.push(p);
        stride *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use prt_ram::{Geometry, UniverseSpec};

    fn universe(n: usize) -> FaultUniverse {
        FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim())
    }

    #[test]
    fn mats_plus_covers_saf_and_af_completely() {
        let u = universe(8);
        let r = evaluate(&library::mats_plus(), &u, &Executor::new().stop_at_first_mismatch());
        assert!(r.class("SAF").unwrap().complete(), "SAF: {:?}", r.class("SAF"));
        assert!(r.class("AF").unwrap().complete(), "AF: {:?}", r.class("AF"));
        // MATS+ guarantees nothing for TF.
        assert!(!r.class("TF").unwrap().complete());
    }

    #[test]
    fn march_c_minus_covers_the_paper_claim_universe() {
        let u = universe(8);
        let r = evaluate(&library::march_c_minus(), &u, &Executor::new().stop_at_first_mismatch());
        for class in ["SAF", "TF", "AF", "CFin", "CFid", "CFst"] {
            let row = r.class(class).unwrap();
            assert!(
                row.complete(),
                "March C- should fully cover {class}: {}/{}",
                row.detected,
                row.total
            );
        }
        assert!(r.complete());
        assert!((r.overall_percent() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn march_u_and_raw_cover_the_paper_claim_universe() {
        // The two newest library algorithms, wired through the (default,
        // lane-batched) evaluator: March U matches March C-'s unlinked
        // static coverage at 13n, March RAW keeps it at 26n while adding
        // the read-after-write read-back structure.
        let u = universe(8);
        let ex = Executor::new().stop_at_first_mismatch();
        for test in [library::march_u(), library::march_raw()] {
            let r = evaluate(&test, &u, &ex);
            assert!(r.complete(), "{} should cover the paper-claim universe", test.name());
        }
    }

    #[test]
    fn coverage_is_monotone_from_mats_to_march_c_minus() {
        let u = universe(6);
        let ex = Executor::new().stop_at_first_mismatch();
        let weak = evaluate(&library::mats(), &u, &ex);
        let strong = evaluate(&library::march_c_minus(), &u, &ex);
        assert!(strong.overall_percent() >= weak.overall_percent());
    }

    #[test]
    fn standard_backgrounds_shapes() {
        assert_eq!(standard_backgrounds(1), vec![0]);
        assert_eq!(standard_backgrounds(2), vec![0b00, 0b10]);
        assert_eq!(standard_backgrounds(4), vec![0b0000, 0b1010, 0b1100]);
        assert_eq!(
            standard_backgrounds(8),
            vec![0b0000_0000, 0b1010_1010, 0b1100_1100, 0b1111_0000]
        );
        // Every bit pair is separated by some background.
        for m in [2u32, 4, 8, 16] {
            let bgs = standard_backgrounds(m);
            for a in 0..m {
                for b in 0..a {
                    assert!(
                        bgs.iter().any(|&p| (p >> a) & 1 != (p >> b) & 1),
                        "bits {a},{b} never separated for m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_background_completes_intra_word_coverage() {
        use prt_ram::Geometry;
        // Intra-word couplings on a 4-bit WOM: single background misses the
        // ⟨s;s⟩ family; the standard background set restores 100% for
        // March SS (the strongest static-fault test).
        let spec = UniverseSpec {
            cfin: true,
            cfid: true,
            cfst: true,
            coupling_radius: Some(0),
            intra_word: true,
            ..UniverseSpec::default()
        };
        let u = FaultUniverse::enumerate(Geometry::wom(6, 4).unwrap(), &spec);
        let ex = Executor::new().stop_at_first_mismatch();
        let single = evaluate(&library::march_ss(), &u, &ex);
        assert!(!single.complete(), "single background must miss intra-word faults");
        let multi =
            evaluate_multi_background(&library::march_ss(), &u, &ex, &standard_backgrounds(4));
        assert!(
            multi.complete(),
            "standard backgrounds must complete March SS intra-word coverage: {:?}",
            multi.rows()
        );
    }

    #[test]
    fn engine_report_is_thread_count_invariant() {
        use prt_sim::{Campaign, Parallelism};
        let u = universe(8);
        let test = library::march_c_minus();
        let ex = Executor::new().stop_at_first_mismatch();
        let make = |p: Parallelism| {
            Campaign::new(&u, MarchRunner::new(&test, &ex))
                .with_name(test.name())
                .with_parallelism(p)
                .run()
        };
        let sequential = make(Parallelism::Sequential);
        for threads in [2usize, 5] {
            assert_eq!(sequential, make(Parallelism::Threads(threads)), "threads={threads}");
        }
        // …and equals what the seed's fresh-Ram-per-trial loop produced.
        let reference = Campaign::new(&u, MarchRunner::new(&test, &ex)).detections_reference();
        let pooled = Campaign::new(&u, MarchRunner::new(&test, &ex)).detections();
        assert_eq!(reference, pooled);
    }

    #[test]
    fn multi_background_pooled_matches_reference() {
        use prt_sim::Campaign;
        let spec = UniverseSpec {
            cfst: true,
            intra_word: true,
            coupling_radius: Some(0),
            ..UniverseSpec::default()
        };
        let u = FaultUniverse::enumerate(Geometry::wom(8, 4).unwrap(), &spec);
        let test = library::march_ss();
        let ex = Executor::new().stop_at_first_mismatch();
        let bgs = standard_backgrounds(4);
        let campaign = Campaign::new(&u, MarchRunner::new(&test, &ex)).with_backgrounds(&bgs);
        assert_eq!(campaign.detections(), campaign.detections_reference());
    }

    #[test]
    fn compiled_evaluation_matches_interpreted_runner() {
        // The evaluators now run compiled programs; the interpreted
        // MarchRunner path must agree report-for-report.
        let u = universe(8);
        let ex = Executor::new().stop_at_first_mismatch();
        for test in [library::mats_plus(), library::march_c_minus(), library::march_ss()] {
            let compiled = evaluate(&test, &u, &ex);
            let interpreted =
                Campaign::new(&u, MarchRunner::new(&test, &ex)).with_name(test.name()).run();
            assert_eq!(compiled, interpreted, "{}", test.name());
        }
    }

    #[test]
    fn compiled_multi_background_matches_interpreted_runner() {
        let spec = UniverseSpec {
            cfst: true,
            intra_word: true,
            coupling_radius: Some(0),
            ..UniverseSpec::default()
        };
        let u = FaultUniverse::enumerate(Geometry::wom(8, 4).unwrap(), &spec);
        let test = library::march_ss();
        let ex = Executor::new().stop_at_first_mismatch();
        let bgs = standard_backgrounds(4);
        let compiled = evaluate_multi_background(&test, &u, &ex, &bgs);
        let interpreted = Campaign::new(&u, MarchRunner::new(&test, &ex))
            .with_backgrounds(&bgs)
            .with_name(test.name())
            .run();
        assert_eq!(compiled, interpreted);
    }

    #[test]
    fn report_accessors() {
        let u = universe(4);
        let r = evaluate(&library::mats_plus(), &u, &Executor::new());
        assert_eq!(r.test_name(), "MATS+");
        assert!(r.class("SAF").is_some());
        assert!(r.class("NPSF").is_none());
        let saf = r.class("SAF").unwrap();
        assert_eq!(saf.total, 8);
        assert!((saf.percent() - 100.0).abs() < f64::EPSILON);
    }
}
