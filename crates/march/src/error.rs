use std::error::Error;
use std::fmt;

/// Errors from parsing March notation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MarchError {
    /// The notation string was empty or contained no elements.
    Empty,
    /// Missing opening `{` or closing `}`.
    UnbalancedBraces,
    /// An element lacked its parenthesised operation list.
    MalformedElement {
        /// The offending element text.
        text: String,
    },
    /// An unknown address-order symbol.
    UnknownOrder {
        /// The offending symbol.
        symbol: String,
    },
    /// An unknown operation token (expected `r0`, `r1`, `w0`, `w1`).
    UnknownOp {
        /// The offending token.
        token: String,
    },
    /// An element with an empty operation list.
    EmptyElement,
}

impl fmt::Display for MarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchError::Empty => write!(f, "empty march notation"),
            MarchError::UnbalancedBraces => write!(f, "march notation must be enclosed in {{ }}"),
            MarchError::MalformedElement { text } => {
                write!(f, "malformed march element: {text:?}")
            }
            MarchError::UnknownOrder { symbol } => {
                write!(f, "unknown address order symbol: {symbol:?}")
            }
            MarchError::UnknownOp { token } => write!(f, "unknown march operation: {token:?}"),
            MarchError::EmptyElement => write!(f, "march element with no operations"),
        }
    }
}

impl Error for MarchError {}
