//! Umbrella crate for the PRT reproduction workspace.
//!
//! Re-exports every subsystem so the examples and cross-crate integration
//! tests have a single import surface:
//!
//! * [`prt_gf`] — Galois-field arithmetic and XOR-network synthesis,
//! * [`prt_lfsr`] — bit and word LFSR models,
//! * [`prt_ram`] — the fault-injecting RAM simulator,
//! * [`prt_march`] — the March test engine and baselines,
//! * [`prt_core`] — pseudo-ring testing itself,
//! * [`prt_sim`] — the parallel fault-simulation campaign engine (pooled
//!   memories, compiled-program runners, deterministic aggregation).
//!
//! # Example
//!
//! ```
//! use prt_suite::prelude::*;
//!
//! let pi = PiTest::figure_1a()?;
//! let mut ram = Ram::new(Geometry::bom(12));
//! assert!(!pi.run(&mut ram)?.detected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use prt_core;
pub use prt_diag;
pub use prt_gf;
pub use prt_lfsr;
pub use prt_march;
pub use prt_ram;
pub use prt_sim;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use prt_core::scheme::IterationSpec;
    pub use prt_core::{
        BistController, BitPlanePi, PiResult, PiTest, PlaneScheme, PlaneSeeding, PrtError,
        PrtScheme, Trajectory,
    };
    pub use prt_diag::{
        DiagError, Diagnosis, DictionaryStats, DictionaryStore, FaultDictionary, FaultFamily,
        Localizer, Observation, SignatureCollector,
    };
    pub use prt_gf::{BitMatrix, Field, Poly2, PolyGf, XorNetwork};
    pub use prt_lfsr::{BitLfsr, GaloisLfsr, Misr, WordLfsr};
    pub use prt_march::{library as march_library, Executor, MarchTest};
    pub use prt_ram::{
        fault_cells, fault_locality_key, lane_word, ActiveSet, ActivityIndex, CouplingTrigger,
        Execution, FaultKind, FaultUniverse, Geometry, LaneChunk, LaneRam, Layout, LazyUniverse,
        PortOp, ProgramBuilder, Ram, RamError, Scrambler, SplitMix64, TestProgram, Topology,
        TopologyStage, UniverseSpec, LANES,
    };
    pub use prt_sim::{
        Campaign, CampaignError, CancelToken, CheckpointError, CoverageReport, FaultRunner,
        LaneWidth, Parallelism, PartialCoverage, ProgramBank, SegmentProgress, StopCause,
    };
}
